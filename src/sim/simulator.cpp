#include "sim/simulator.h"

namespace pnp::sim {

Simulator::Simulator(const kernel::Machine& m, std::uint64_t seed)
    : m_(m), state_(m.initial()), rng_(seed) {}

void Simulator::reset() {
  state_ = m_.initial();
  history_.clear();
}

bool Simulator::step_random() {
  scratch_.clear();
  m_.successors(state_, scratch_);
  if (scratch_.empty()) return false;
  const std::size_t pick =
      std::uniform_int_distribution<std::size_t>(0, scratch_.size() - 1)(rng_);
  state_ = std::move(scratch_[pick].first);
  history_.push_back(scratch_[pick].second);
  return true;
}

bool Simulator::step_with(const Chooser& choose) {
  scratch_.clear();
  m_.successors(state_, scratch_);
  if (scratch_.empty()) return false;
  const int pick = choose(scratch_);
  if (pick < 0 || pick >= static_cast<int>(scratch_.size())) return false;
  state_ = std::move(scratch_[static_cast<std::size_t>(pick)].first);
  history_.push_back(scratch_[static_cast<std::size_t>(pick)].second);
  return true;
}

std::size_t Simulator::run_random(std::size_t max_steps) {
  std::size_t n = 0;
  while (n < max_steps && step_random()) ++n;
  return n;
}

bool Simulator::step_preferring(const std::string& preferred) {
  scratch_.clear();
  m_.successors(state_, scratch_);
  if (scratch_.empty()) return false;
  std::size_t pick = scratch_.size();
  for (std::size_t i = 0; i < scratch_.size(); ++i) {
    if (m_.describe_step(scratch_[i].second).find(preferred) !=
        std::string::npos) {
      pick = i;
      break;
    }
  }
  if (pick == scratch_.size())
    pick = std::uniform_int_distribution<std::size_t>(0, scratch_.size() - 1)(
        rng_);
  state_ = std::move(scratch_[pick].first);
  history_.push_back(scratch_[pick].second);
  return true;
}

}  // namespace pnp::sim
