// Random and guided simulation over a compiled machine. Used to generate
// example scenarios (the paper's Fig. 4 message sequence charts) and for
// smoke-testing models before exhaustive verification.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <vector>

#include "kernel/machine.h"

namespace pnp::sim {

class Simulator {
 public:
  /// Picks one successor index from the current candidates, or -1 to stop.
  using Chooser = std::function<int(const std::vector<kernel::Succ>&)>;

  explicit Simulator(const kernel::Machine& m, std::uint64_t seed = 1);

  void reset();
  const kernel::State& state() const { return state_; }
  const std::vector<kernel::Step>& history() const { return history_; }

  /// Executes one uniformly random enabled step; false if none exists.
  bool step_random();

  /// Executes the successor selected by `choose`; false if it returns -1 or
  /// no successor exists.
  bool step_with(const Chooser& choose);

  /// Runs up to `max_steps` random steps; returns how many were taken.
  std::size_t run_random(std::size_t max_steps);

  /// Runs with a preference function: among the candidates, picks the first
  /// whose description contains `preferred` (per call), falling back to a
  /// random step. Handy for steering scenarios.
  bool step_preferring(const std::string& preferred);

 private:
  const kernel::Machine& m_;
  kernel::State state_;
  std::vector<kernel::Step> history_;
  std::vector<kernel::Succ> scratch_;
  std::mt19937_64 rng_;
};

}  // namespace pnp::sim
