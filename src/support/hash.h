// Hashing utilities for state vectors.
//
// The explorer dedupes millions of small byte strings; we use a 64-bit
// FNV-1a with an avalanche finalizer, which is plenty for closed-set
// hashing and has no external dependencies. A second independent hash is
// provided for the double-bit bitstate (supertrace) mode.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace pnp {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t avalanche64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Views character data (state keys are built in std::string buffers) as the
/// byte span the hashing and visited-store APIs consume.
inline std::span<const std::uint8_t> byte_span(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

inline std::uint64_t hash_bytes(std::span<const std::uint8_t> bytes,
                                std::uint64_t seed = kFnvOffset) {
  std::uint64_t h = seed;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return avalanche64(h);
}

/// Independent second hash for Bloom-style bitstate storage.
inline std::uint64_t hash_bytes2(std::span<const std::uint8_t> bytes) {
  return hash_bytes(bytes, 0x9e3779b97f4a7c15ull);
}

/// Word-at-a-time hash for IN-MEMORY tables only (visited-state store,
/// COLLAPSE component interning). FNV-1a's byte-serial multiply chain costs
/// ~4 cycles per byte; state keys are hashed tens of millions of times per
/// run, which made hashing itself show up in exploration profiles. This
/// reads 8-byte words (memcpy, so alignment-safe) and is several times
/// faster on the 20-60 byte inputs the stores see. It is NOT byte-order
/// stable across platforms: anything persisted (verdict cache keys, AOT
/// artifact names) must keep using stable_hash64/hash_bytes. Bitstate mode
/// also keeps FNV so seeded swarm searches reproduce historical verdicts.
inline std::uint64_t fast_hash64(std::span<const std::uint8_t> bytes) {
  constexpr std::uint64_t kMul = 0x9ddfea08eb382d69ull;
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ (bytes.size() * kFnvPrime);
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  while (n >= 8) {
    std::uint64_t w;
    __builtin_memcpy(&w, p, 8);
    h = (h ^ w) * kMul;
    h ^= h >> 29;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t w = 0;
    __builtin_memcpy(&w, p, n);
    h = (h ^ w) * kMul;
    h ^= h >> 29;
  }
  return avalanche64(h);
}

/// Platform- and endian-stable 64-bit digest of a text. This is the ONLY
/// hash the content-addressed verification cache may use for persisted
/// keys: FNV-1a consumes bytes one at a time (no word-width or byte-order
/// dependence) and every constant is pinned above, so the same canonical
/// text digests identically on every machine -- a cache written on one
/// host is valid on another. tests/test_reduce.cpp pins known digests;
/// changing this function invalidates persisted caches and must bump
/// reduce::kCacheFormatVersion.
inline std::uint64_t stable_hash64(std::string_view text) {
  return hash_bytes(
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
}

}  // namespace pnp
