#include "support/json.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace pnp::json {

const Value* Value::get(const std::string& key) const {
  for (const auto& kv : obj)
    if (kv.first == key) return &kv.second;
  return nullptr;
}

std::string Value::str_or(const std::string& key, std::string def) const {
  const Value* v = get(key);
  return v != nullptr && v->is_string() ? v->str : std::move(def);
}

double Value::num_or(const std::string& key, double def) const {
  const Value* v = get(key);
  return v != nullptr && v->is_number() ? v->num : def;
}

bool Value::bool_or(const std::string& key, bool def) const {
  const Value* v = get(key);
  return v != nullptr && v->is_bool() ? v->b : def;
}

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string err;

  void skip_ws() {
    while (p != end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r'))
      ++p;
  }
  bool fail(const std::string& what) {
    if (err.empty()) err = what;
    return false;
  }
  bool parse_value(Value& out) {
    skip_ws();
    if (p == end) return fail("unexpected end of input");
    switch (*p) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.type = Value::Type::String;
        return parse_string(out.str);
      case 't':
        if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
          p += 4;
          out.type = Value::Type::Bool;
          out.b = true;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
          p += 5;
          out.type = Value::Type::Bool;
          out.b = false;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (end - p >= 4 && std::strncmp(p, "null", 4) == 0) {
          p += 4;
          out.type = Value::Type::Null;
          return true;
        }
        return fail("bad literal");
      default: return parse_number(out);
    }
  }
  bool parse_string(std::string& out) {
    ++p;  // opening quote
    out.clear();
    while (p != end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p == end) return fail("unterminated escape");
        char esc = *p++;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (end - p < 4) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = *p++;
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            // Our writers only escape control chars; a byte is enough.
            out += static_cast<char>(code & 0xff);
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    if (p == end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }
  bool parse_number(Value& out) {
    const char* start = p;
    if (p != end && (*p == '-' || *p == '+')) ++p;
    while (p != end &&
           (std::isdigit(static_cast<unsigned char>(*p)) || *p == '.' ||
            *p == 'e' || *p == 'E' || *p == '-' || *p == '+'))
      ++p;
    if (p == start) return fail("bad number");
    out.type = Value::Type::Number;
    out.num = std::strtod(std::string(start, p).c_str(), nullptr);
    return true;
  }
  bool parse_array(Value& out) {
    out.type = Value::Type::Array;
    ++p;  // '['
    skip_ws();
    if (p != end && *p == ']') {
      ++p;
      return true;
    }
    while (true) {
      Value v;
      if (!parse_value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (p == end) return fail("unterminated array");
      if (*p == ',') {
        ++p;
        continue;
      }
      if (*p == ']') {
        ++p;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
  bool parse_object(Value& out) {
    out.type = Value::Type::Object;
    ++p;  // '{'
    skip_ws();
    if (p != end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      skip_ws();
      if (p == end || *p != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (p == end || *p != ':') return fail("expected ':'");
      ++p;
      Value v;
      if (!parse_value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (p == end) return fail("unterminated object");
      if (*p == ',') {
        ++p;
        continue;
      }
      if (*p == '}') {
        ++p;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

}  // namespace

bool parse(std::string_view text, Value& out, std::string* err) {
  Parser parser{text.data(), text.data() + text.size(), {}};
  if (!parser.parse_value(out)) {
    if (err != nullptr) *err = "parse error: " + parser.err;
    return false;
  }
  parser.skip_ws();
  if (parser.p != parser.end) {
    if (err != nullptr) *err = "trailing bytes after value";
    return false;
  }
  return true;
}

void append_string(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

}  // namespace pnp::json
