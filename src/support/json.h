// Minimal JSON reading and writing, shared by the observability ledger
// (pnp.run.v1 records, see obs/obs.h) and the pnpd job protocol
// (pnp.job.v1, see serve/proto.h).
//
// The reader is a small recursive-descent parser producing a generic value
// tree -- just enough JSON for single-line records whose writers we also
// own. It accepts the standard scalar/array/object grammar, keeps object
// keys in insertion order, and decodes the escape sequences our writers
// emit (\uXXXX escapes below 0x100 decode to the raw byte; the writers only
// escape control characters, so nothing larger is ever produced).
//
// The writer helpers append canonical single-line fragments: strings with
// control characters escaped, numbers via %.6g, integers in full precision.
// Everything the repo persists as JSON/JSONL goes through these, so records
// stay byte-stable across call sites.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pnp::json {

struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<Value> arr;
  std::vector<std::pair<std::string, Value>> obj;

  bool is_null() const { return type == Type::Null; }
  bool is_bool() const { return type == Type::Bool; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }
  bool is_array() const { return type == Type::Array; }
  bool is_object() const { return type == Type::Object; }

  /// First value stored under `key` (objects keep duplicates as written);
  /// null when absent or when this value is not an object.
  const Value* get(const std::string& key) const;

  /// Typed lookups for flat record shapes: the value under `key` when it
  /// has the requested type, otherwise the supplied default.
  std::string str_or(const std::string& key, std::string def = {}) const;
  double num_or(const std::string& key, double def = 0.0) const;
  bool bool_or(const std::string& key, bool def = false) const;
};

/// Parses exactly one JSON value spanning all of `text` (surrounding
/// whitespace allowed; trailing bytes are an error). Returns false and
/// fills `*err` (when non-null) with a one-line reason on malformed input.
bool parse(std::string_view text, Value& out, std::string* err);

// -- single-line writer helpers ----------------------------------------------

/// Appends `s` as a quoted JSON string, escaping quotes, backslashes and
/// control characters (so the result never contains a raw newline -- the
/// invariant JSONL framing depends on).
void append_string(std::string& out, const std::string& s);

/// Appends `v` with %.6g formatting; non-finite values are written as 0.
void append_double(std::string& out, double v);

void append_u64(std::string& out, std::uint64_t v);

}  // namespace pnp::json
