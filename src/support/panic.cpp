#include "support/panic.h"

namespace pnp {

void raise_model_error(const std::string& what) { throw ModelError(what); }

}  // namespace pnp
