// Error-handling primitives for the pnp library.
//
// The library distinguishes two failure categories:
//  * programming errors (violated preconditions, malformed models) -> ModelError
//  * resource exhaustion during exploration -> reported through result types,
//    never via exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace pnp {

/// Thrown when a model is structurally invalid (bad channel arity, unbound
/// variable slot, type mismatch in the IR, ...). These are bugs in the code
/// that *builds* the model, so they surface loudly instead of being encoded
/// in return values.
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(std::string what) : std::runtime_error(std::move(what)) {}
};

[[noreturn]] void raise_model_error(const std::string& what);

/// Precondition check used throughout the library. Unlike assert() it is
/// active in release builds: model-construction bugs must never silently
/// corrupt a verification result.
#define PNP_CHECK(cond, msg)                                  \
  do {                                                        \
    if (!(cond)) ::pnp::raise_model_error(std::string(msg)); \
  } while (0)

}  // namespace pnp
