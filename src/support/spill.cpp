#include "support/spill.h"

#include <cstdio>
#include <cstring>
#include <filesystem>

#include "support/panic.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace pnp::support {

SpillPool::SpillPool(const std::string& dir) : dir_(dir) {
  PNP_CHECK(!dir.empty(), "SpillPool: empty spill directory");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  PNP_CHECK(!ec, "SpillPool: cannot create spill directory " + dir_ + ": " +
                     ec.message());
}

SpillPool::~SpillPool() {
  for (const Block& b : blocks_) {
    if (!b.p) continue;
#if !defined(_WIN32)
    ::munmap(b.p, b.bytes);
#else
    ::operator delete(b.p);
#endif
  }
}

void* SpillPool::alloc(std::size_t bytes) {
  PNP_CHECK(bytes > 0, "SpillPool: zero-byte allocation");
  std::lock_guard<std::mutex> lock(mu_);
#if !defined(_WIN32)
  char name[64];
  std::snprintf(name, sizeof name, "spill-%d-%llu.bin",
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(seq_++));
  const std::string path =
      (std::filesystem::path(dir_) / name).string();
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  PNP_CHECK(fd >= 0, "SpillPool: cannot create spill file " + path);
  // Unlink right away: the mapping keeps the storage alive, and a crashed
  // or SIGKILLed run leaves no stale files in the spill directory.
  ::unlink(path.c_str());
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    raise_model_error("SpillPool: cannot size spill file " + path +
                      " (disk full?)");
  }
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  PNP_CHECK(p != MAP_FAILED, "SpillPool: mmap failed for " + path);
#else
  void* p = ::operator new(bytes);
  std::memset(p, 0, bytes);
#endif
  blocks_.push_back({p, bytes});
  disk_bytes_ += bytes;
  return p;
}

void SpillPool::free(void* p) {
  if (!p) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (Block& b : blocks_) {
    if (b.p != p) continue;
#if !defined(_WIN32)
    ::munmap(b.p, b.bytes);
#else
    ::operator delete(b.p);
#endif
    disk_bytes_ -= b.bytes;
    b = blocks_.back();
    blocks_.pop_back();
    return;
  }
  raise_model_error("SpillPool: free of unknown block");
}

std::uint64_t SpillPool::disk_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return disk_bytes_;
}

std::size_t SpillPool::blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blocks_.size();
}

}  // namespace pnp::support
