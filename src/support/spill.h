// Disk-backed allocation for stores that outgrow the memory budget.
//
// A SpillPool hands out mmap'd file-backed blocks under a caller-chosen
// spill directory. Each block is its own file, unlinked immediately after
// mapping, so a crash or SIGKILL leaves no litter behind -- the kernel
// reclaims the disk space when the mapping (or the process) dies. Pages of
// a spilled block are clean-evictable through the page cache, which is
// exactly the property the memory ExecBudget wants: the resident set stays
// bounded while the total store grows with the disk.
//
// On platforms without mmap (the _WIN32 fallback) blocks degrade to plain
// heap allocations; callers still work, they just lose the eviction
// behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pnp::support {

/// Thread-safe allocator of file-backed memory blocks. Blocks live until
/// free() or pool destruction; they never move.
class SpillPool {
 public:
  /// `dir` is created if missing. Raises ModelError when it cannot be
  /// created or a probe file cannot be written there.
  explicit SpillPool(const std::string& dir);
  ~SpillPool();

  SpillPool(const SpillPool&) = delete;
  SpillPool& operator=(const SpillPool&) = delete;

  /// Returns a zero-filled block of at least `bytes`. Raises ModelError
  /// when the file cannot be created, sized, or mapped (e.g. disk full).
  void* alloc(std::size_t bytes);
  /// Releases a block returned by alloc(). `p` may be null (no-op).
  void free(void* p);

  const std::string& dir() const { return dir_; }
  /// Total bytes currently spilled to disk-backed blocks.
  std::uint64_t disk_bytes() const;
  /// Number of live blocks (diagnostics / tests).
  std::size_t blocks() const;

 private:
  struct Block {
    void* p = nullptr;
    std::size_t bytes = 0;
  };

  std::string dir_;
  mutable std::mutex mu_;
  std::vector<Block> blocks_;
  std::uint64_t disk_bytes_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace pnp::support
