#include "support/string_util.h"

namespace pnp {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_to(std::string_view s, std::size_t width) {
  std::string out(s.substr(0, width));
  out.resize(width, ' ');
  return out;
}

std::string center(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s.substr(0, width));
  const std::size_t left = (width - s.size()) / 2;
  std::string out(left, ' ');
  out += s;
  out.resize(width, ' ');
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace pnp
