// Small string helpers shared by the trace renderers and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pnp {

/// Joins `parts` with `sep` ("a, b, c").
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Left-pads or truncates `s` to exactly `width` columns.
std::string pad_to(std::string_view s, std::size_t width);

/// Centers `s` within `width` columns (used by the MSC renderer).
std::string center(std::string_view s, std::size_t width);

/// True if `s` starts with `prefix` (convenience over std::string::starts_with
/// for string_view pairs on older standard libraries).
bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace pnp
