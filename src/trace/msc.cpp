#include "trace/msc.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/string_util.h"

namespace pnp::trace {

namespace {

using kernel::Step;
using kernel::StepEvent;

std::string default_label(const kernel::Machine& m, int chan,
                          const std::vector<kernel::Value>& msg) {
  std::string out = m.spec().channels[static_cast<std::size_t>(chan)].name + "(";
  for (std::size_t i = 0; i < msg.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(msg[i]);
  }
  return out + ")";
}

}  // namespace

std::string render_msc(const kernel::Machine& m,
                       const std::vector<Step>& steps, const MscOptions& opt) {
  // -- assign columns ---------------------------------------------------------
  std::vector<int> pids = opt.pids;
  if (pids.empty())
    for (int p = 0; p < m.n_processes(); ++p) pids.push_back(p);

  std::map<int, int> pid_col;   // pid -> column
  std::map<int, int> chan_col;  // chan -> column
  std::vector<std::string> headers;
  for (int p : pids) {
    pid_col[p] = static_cast<int>(headers.size());
    headers.push_back(m.proc_name(p));
  }
  if (opt.channel_lifelines) {
    for (const Step& s : steps) {
      if (s.event.kind != StepEvent::Kind::Send &&
          s.event.kind != StepEvent::Kind::Recv)
        continue;
      if (!pid_col.contains(s.pid)) continue;
      if (!chan_col.contains(s.event.chan)) {
        chan_col[s.event.chan] = static_cast<int>(headers.size());
        headers.push_back(
            "[" + m.spec().channels[static_cast<std::size_t>(s.event.chan)].name +
            "]");
      }
    }
  }

  const int w = opt.col_width;
  const int ncols = static_cast<int>(headers.size());
  auto center_of = [w](int col) { return col * w + w / 2; };

  std::ostringstream os;
  // header row
  for (int c = 0; c < ncols; ++c) os << center(headers[static_cast<std::size_t>(c)], static_cast<std::size_t>(w));
  os << "\n";

  auto blank_row = [&]() {
    std::string row(static_cast<std::size_t>(ncols * w), ' ');
    for (int c = 0; c < ncols; ++c)
      row[static_cast<std::size_t>(center_of(c))] = '|';
    return row;
  };

  auto draw_arrow = [&](std::string& row, int from_col, int to_col,
                        const std::string& label) {
    const int a = center_of(from_col);
    const int b = center_of(to_col);
    const int lo = std::min(a, b);
    const int hi = std::max(a, b);
    for (int i = lo + 1; i < hi; ++i) row[static_cast<std::size_t>(i)] = '-';
    if (b > a)
      row[static_cast<std::size_t>(hi - 1)] = '>';
    else
      row[static_cast<std::size_t>(lo + 1)] = '<';
    // overlay the label centered in the span
    std::string lab = label;
    const int span = hi - lo - 3;
    if (span > 2) {
      if (static_cast<int>(lab.size()) > span) lab = lab.substr(0, static_cast<std::size_t>(span));
      const int start = lo + 2 + (span - static_cast<int>(lab.size())) / 2;
      for (std::size_t i = 0; i < lab.size(); ++i)
        row[static_cast<std::size_t>(start) + i] = lab[i];
    }
  };

  std::size_t shown = 0;
  for (const Step& s : steps) {
    if (shown >= opt.max_events) {
      os << "  ... (" << steps.size() - shown << " more events)\n";
      break;
    }
    if (s.pid < 0) continue;
    auto it = pid_col.find(s.pid);
    if (it == pid_col.end()) continue;
    const int src = it->second;
    std::string row = blank_row();
    auto label_of = [&](int chan, const std::vector<kernel::Value>& msg) {
      return opt.label ? opt.label(chan, msg) : default_label(m, chan, msg);
    };
    switch (s.event.kind) {
      case StepEvent::Kind::Handshake: {
        auto pit = pid_col.find(s.partner_pid);
        if (pit == pid_col.end()) continue;
        draw_arrow(row, src, pit->second, label_of(s.event.chan, s.event.msg));
        break;
      }
      case StepEvent::Kind::Send: {
        auto cit = chan_col.find(s.event.chan);
        if (cit == chan_col.end()) continue;
        draw_arrow(row, src, cit->second, label_of(s.event.chan, s.event.msg));
        break;
      }
      case StepEvent::Kind::Recv: {
        auto cit = chan_col.find(s.event.chan);
        if (cit == chan_col.end()) continue;
        draw_arrow(row, cit->second, src, label_of(s.event.chan, s.event.msg));
        break;
      }
      case StepEvent::Kind::Local: {
        if (!opt.show_local) continue;
        row[static_cast<std::size_t>(center_of(src))] = '*';
        break;
      }
    }
    os << row << "\n";
    ++shown;
  }
  return os.str();
}

}  // namespace pnp::trace
