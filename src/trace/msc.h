// Message Sequence Chart renderer: turns a sequence of kernel steps into an
// ASCII MSC like the paper's Fig. 4 scenarios (component / port / channel
// lifelines with message arrows between them).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "kernel/machine.h"

namespace pnp::trace {

struct MscOptions {
  int col_width = 20;
  /// Lifelines to draw, as pids; empty = all processes.
  std::vector<int> pids;
  /// Draw buffered channels as their own lifelines (rendezvous arrows always
  /// go process-to-process).
  bool channel_lifelines = true;
  /// Show steps that move no message (guards, assignments) as '*' marks.
  bool show_local = false;
  std::size_t max_events = 300;
  /// Formats an arrow label; default prints "chan(v1,v2,...)".
  std::function<std::string(int chan, const std::vector<kernel::Value>&)> label;
};

std::string render_msc(const kernel::Machine& m,
                       const std::vector<kernel::Step>& steps,
                       const MscOptions& opt = {});

}  // namespace pnp::trace
