#include "trace/trace.h"

#include <sstream>

namespace pnp::trace {

std::string to_string(const Trace& t) {
  std::ostringstream os;
  for (std::size_t i = 0; i < t.steps.size(); ++i)
    os << "  " << (i + 1) << ". " << t.steps[i].description << "\n";
  if (!t.final_state.empty()) os << "final state:\n" << t.final_state << "\n";
  return os.str();
}

std::vector<kernel::Step> steps_of(const Trace& t) {
  std::vector<kernel::Step> out;
  out.reserve(t.steps.size());
  for (const TraceStep& s : t.steps) out.push_back(s.step);
  return out;
}

}  // namespace pnp::trace
