// Counterexample traces: the sequence of interleaving steps from the
// initial state to a violation, with human-readable descriptions.
#pragma once

#include <string>
#include <vector>

#include "kernel/machine.h"

namespace pnp::trace {

struct TraceStep {
  kernel::Step step;
  std::string description;
};

struct Trace {
  std::vector<TraceStep> steps;
  /// Rendering of the violating state (machine.format_state).
  std::string final_state;

  bool empty() const { return steps.empty(); }
  std::size_t size() const { return steps.size(); }
};

/// Renders the trace as a numbered step list.
std::string to_string(const Trace& t);

/// Extracts the raw kernel steps (input to the MSC renderer).
std::vector<kernel::Step> steps_of(const Trace& t);

}  // namespace pnp::trace
