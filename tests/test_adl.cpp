// ADL front-end tests: parsing the textual architecture format, embedded
// PML behaviours, plug-and-play edits on parsed architectures, and error
// diagnostics.
#include <gtest/gtest.h>

#include "adl/adl.h"
#include "pnp/pnp.h"
#include "pnp/textual.h"
#include "support/panic.h"

namespace pnp::adl {
namespace {

const char* kDemo = R"(
architecture demo {
  global delivered = 0;

  component Producer {
    behavior {
      byte i = 1;
      do
      :: i <= 2 -> out_data!i,0,0,0,0,0; out_sig?SEND_SUCC,_; i++
      :: i > 2 -> break
      od
    }
  }

  component Consumer {
    behavior {
      byte j = 1; byte v;
      do
      :: j <= 2 ->
         in_data!0,0,0,0,0,0;
         in_sig?RECV_SUCC,_;
         in_data?v,_,_,_,_,_;
         assert(v == j);
         delivered++;
         j++
      :: j > 2 -> break
      od
    }
  }

  connector Link : fifo(2) {
    sender Producer.out via asyn_blocking;
    receiver Consumer.in via blocking;
  }
}
)";

TEST(Adl, ParsesStructure) {
  Architecture arch = parse_architecture(kDemo);
  EXPECT_EQ(arch.name(), "demo");
  EXPECT_EQ(arch.components().size(), 2u);
  EXPECT_EQ(arch.connectors().size(), 1u);
  EXPECT_EQ(arch.globals().size(), 1u);
  EXPECT_EQ(arch.connectors()[0].channel.kind, ChannelKind::Fifo);
  EXPECT_EQ(arch.connectors()[0].channel.capacity, 2);
  ASSERT_EQ(arch.attachments().size(), 2u);
  EXPECT_EQ(arch.attachments()[0].send_kind, SendPortKind::AsynBlocking);
  EXPECT_EQ(arch.attachments()[1].recv_kind, RecvPortKind::Blocking);
}

TEST(Adl, GeneratesAndVerifies) {
  Architecture arch = parse_architecture(kDemo);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome safety = check_safety(m);
  EXPECT_TRUE(safety.passed()) << safety.report();
  const SafetyOutcome endinv = check_end_invariant(
      m, gen.gx("delivered") == gen.kx(2), "all delivered");
  EXPECT_TRUE(endinv.passed()) << endinv.report();
}

TEST(Adl, PlugAndPlayEditsOnParsedArchitecture) {
  Architecture arch = parse_architecture(kDemo);
  ModelGenerator gen;
  (void)gen.generate(arch);
  // swap blocks on the parsed design: components must be reused
  arch.set_send_port(arch.find_component("Producer"), "out",
                     SendPortKind::SynBlocking);
  arch.set_channel(arch.find_connector("Link"), {ChannelKind::Priority, 3});
  const kernel::Machine m = gen.generate(arch);
  EXPECT_EQ(gen.last_stats().component_models_built, 0);
  EXPECT_EQ(gen.last_stats().component_models_reused, 2);
  EXPECT_TRUE(check_safety(m).passed());
}

TEST(Adl, OptimizedGenerationWorksOnParsedArchitecture) {
  Architecture arch = parse_architecture(kDemo);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch, {.optimize_connectors = true});
  EXPECT_EQ(gen.last_stats().connectors_optimized, 1);
  EXPECT_TRUE(check_safety(m).passed());
}

TEST(Adl, BehaviourSeesGlobalsAndSignals) {
  // a behaviour that reads a global in a guard and matches a signal name
  Architecture arch = parse_architecture(R"(
    architecture g {
      global go = 1;
      component A {
        behavior {
          go == 1;
          out_data!9,0,0,0,0,0;
          out_sig?SEND_SUCC,_
        }
      }
      component B {
        behavior {
          byte v;
          in_data!0,0,0,0,0,0; in_sig?RECV_SUCC,_; in_data?v,_,_,_,_,_;
          assert(v == 9)
        }
      }
      connector L : single_slot {
        sender A.out via syn_blocking;
        receiver B.in via blocking;
      }
    }
  )");
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  EXPECT_TRUE(check_safety(m).passed());
}

TEST(Adl, DiagnosesUnknownKinds) {
  EXPECT_THROW(parse_architecture(R"(
    architecture x {
      component A { behavior { skip } }
      component B { behavior { skip } }
      connector L : carrier_pigeon {
        sender A.out via asyn_blocking;
        receiver B.in via blocking;
      }
    }
  )"),
               ModelError);
}

TEST(Adl, DiagnosesUnknownComponent) {
  EXPECT_THROW(parse_architecture(R"(
    architecture x {
      component A { behavior { skip } }
      connector L : fifo(1) {
        sender Ghost.out via asyn_blocking;
        receiver A.in via blocking;
      }
    }
  )"),
               ModelError);
}

TEST(Adl, DiagnosesSyntaxErrors) {
  EXPECT_THROW(parse_architecture("architecture x {"), ModelError);
  EXPECT_THROW(parse_architecture("building x {}"), ModelError);
  EXPECT_THROW(parse_architecture(R"(
    architecture x { component A { behavior { skip } )"),
               ModelError);
}

TEST(Adl, BehaviourParseErrorsCarryPosition) {
  Architecture arch = parse_architecture(R"(
    architecture x {
      component A { behavior { nonsense_variable = 1 } }
      component B { behavior { skip } }
      connector L : fifo(1) {
        sender A.out via asyn_blocking;
        receiver B.in via blocking;
      }
    }
  )");
  // behaviour errors surface at generation time (behaviours parse lazily)
  ModelGenerator gen;
  EXPECT_THROW((void)gen.generate(arch), ModelError);
}

}  // namespace
}  // namespace pnp::adl
