// Architecture-layer tests: construction, validation diagnostics, the
// plug-and-play edit operations, version tracking, and generator reuse
// accounting across edits.
#include <gtest/gtest.h>

#include "pnp/pnp.h"

namespace pnp {
namespace {

using namespace model;

ComponentModelFn trivial_sender() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    return seq(iface::send_msg(b, ctx.port("out"), b.k(1)), end_label());
  };
}

ComponentModelFn trivial_receiver() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const LVar v = b.local("v");
    return seq(iface::recv_msg(b, ctx.port("in"), v), end_label());
  };
}

TEST(Architecture, DescribeListsEntities) {
  Architecture arch("demo");
  arch.add_global("counter", 3);
  const int s = arch.add_component("S", trivial_sender());
  const int r = arch.add_component("R", trivial_receiver());
  patterns::point_to_point(arch, s, "out", r, "in", "Link",
                           SendPortKind::SynChecking, RecvPortKind::Nonblocking,
                           {ChannelKind::Priority, 4});
  const std::string d = arch.describe();
  EXPECT_NE(d.find("architecture demo"), std::string::npos);
  EXPECT_NE(d.find("global counter = 3"), std::string::npos);
  EXPECT_NE(d.find("connector Link : Priority(4)"), std::string::npos);
  EXPECT_NE(d.find("SynChkSend"), std::string::npos);
  EXPECT_NE(d.find("NbRecv"), std::string::npos);
}

TEST(Architecture, ValidateRejectsConnectorWithoutReceiver) {
  Architecture arch("bad");
  const int s = arch.add_component("S", trivial_sender());
  const int c = arch.add_connector("L", {ChannelKind::SingleSlot, 1});
  arch.attach_sender(s, "out", c, SendPortKind::AsynBlocking);
  EXPECT_THROW(arch.validate(), ModelError);
}

TEST(Architecture, ValidateRejectsConnectorWithoutSender) {
  Architecture arch("bad");
  const int r = arch.add_component("R", trivial_receiver());
  const int c = arch.add_connector("L", {ChannelKind::SingleSlot, 1});
  arch.attach_receiver(r, "in", c, RecvPortKind::Blocking);
  EXPECT_THROW(arch.validate(), ModelError);
}

TEST(Architecture, ValidateRejectsDuplicatePortNames) {
  Architecture arch("bad");
  const int s = arch.add_component("S", trivial_sender());
  const int r = arch.add_component("R", trivial_receiver());
  const int c = arch.add_connector("L", {ChannelKind::SingleSlot, 1});
  arch.attach_sender(s, "out", c, SendPortKind::AsynBlocking);
  arch.attach_sender(s, "out", c, SendPortKind::SynBlocking);  // duplicate
  arch.attach_receiver(r, "in", c, RecvPortKind::Blocking);
  EXPECT_THROW(arch.validate(), ModelError);
}

TEST(Architecture, EditOperationsEnforceRoles) {
  Architecture arch("x");
  const int s = arch.add_component("S", trivial_sender());
  const int r = arch.add_component("R", trivial_receiver());
  patterns::point_to_point(arch, s, "out", r, "in", "L",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           {ChannelKind::SingleSlot, 1});
  EXPECT_THROW(arch.set_send_port(r, "in", SendPortKind::SynBlocking),
               ModelError);
  EXPECT_THROW(arch.set_recv_port(s, "out", RecvPortKind::Nonblocking),
               ModelError);
  EXPECT_THROW(arch.set_send_port(s, "nonexistent", SendPortKind::SynBlocking),
               ModelError);
}

TEST(Architecture, VersionBumpsOnEveryEdit) {
  Architecture arch("x");
  const std::uint64_t v0 = arch.version();
  const int s = arch.add_component("S", trivial_sender());
  const int r = arch.add_component("R", trivial_receiver());
  const int c = arch.add_connector("L", {ChannelKind::SingleSlot, 1});
  arch.attach_sender(s, "out", c, SendPortKind::AsynBlocking);
  arch.attach_receiver(r, "in", c, RecvPortKind::Blocking);
  const std::uint64_t v1 = arch.version();
  EXPECT_GT(v1, v0);
  arch.set_channel(c, {ChannelKind::Fifo, 2});
  EXPECT_GT(arch.version(), v1);
}

TEST(Architecture, GeneratorReusesBlockModelsAcrossArchitectures) {
  // Two different architectures sharing one generator: the second one gets
  // every building-block model from the cache.
  ModelGenerator gen;
  for (int round = 0; round < 2; ++round) {
    Architecture arch("a" + std::to_string(round));
    const int s = arch.add_component("S" + std::to_string(round),
                                     trivial_sender());
    const int r = arch.add_component("R" + std::to_string(round),
                                     trivial_receiver());
    patterns::point_to_point(arch, s, "out", r, "in",
                             "L" + std::to_string(round),
                             SendPortKind::AsynBlocking,
                             RecvPortKind::Blocking,
                             {ChannelKind::SingleSlot, 1});
    (void)gen.generate(arch);
    if (round == 0) {
      EXPECT_EQ(gen.last_stats().block_models_built, 3);  // port+port+chan
      EXPECT_EQ(gen.last_stats().block_models_reused, 0);
    } else {
      EXPECT_EQ(gen.last_stats().block_models_built, 0);
      EXPECT_EQ(gen.last_stats().block_models_reused, 3);
    }
  }
}

TEST(Architecture, ChannelCapacityChangeCreatesNewQueueOnly) {
  Architecture arch("x");
  const int s = arch.add_component("S", trivial_sender());
  const int r = arch.add_component("R", trivial_receiver());
  const int c = arch.add_connector("L", {ChannelKind::Fifo, 2});
  arch.attach_sender(s, "out", c, SendPortKind::AsynBlocking);
  arch.attach_receiver(r, "in", c, RecvPortKind::Blocking);
  ModelGenerator gen;
  (void)gen.generate(arch);
  const int declared_first = gen.last_stats().channels_declared;
  arch.set_channel(c, {ChannelKind::Fifo, 3});
  (void)gen.generate(arch);
  // only the internal queue channel is new; everything else is reused
  EXPECT_EQ(gen.last_stats().channels_declared, 1);
  EXPECT_EQ(gen.last_stats().channels_reused, declared_first - 1);
  EXPECT_EQ(gen.last_stats().component_models_built, 0);
}

TEST(Architecture, ReattachInvalidatesComponentModel) {
  Architecture arch("x");
  const int s = arch.add_component("S", trivial_sender());
  const int r = arch.add_component("R", trivial_receiver());
  const int c1 = arch.add_connector("L1", {ChannelKind::SingleSlot, 1});
  arch.attach_sender(s, "out", c1, SendPortKind::AsynBlocking);
  arch.attach_receiver(r, "in", c1, RecvPortKind::Blocking);
  ModelGenerator gen;
  (void)gen.generate(arch);
  // Moving the sender to a new connector keeps its endpoint channels (they
  // are keyed by component+port), so the component model is still reused.
  const int c2 = arch.add_connector("L2", {ChannelKind::Fifo, 2});
  arch.reattach(s, "out", c2);
  arch.attach_receiver(r, "in2", c2, RecvPortKind::Blocking);
  // note: r now has a second port "in2" -> its model must be rebuilt
  const int r2 = arch.find_component("R");
  (void)r2;
  EXPECT_THROW((void)gen.generate(arch), ModelError);
  // (connector L1 lost its sender -> validation error, as intended)
}

}  // namespace
}  // namespace pnp

namespace pnp {
namespace {

TEST(Architecture, ToDotRendersEntitiesAndEdges) {
  Architecture arch("dotty");
  const int s = arch.add_component("S", [](ComponentContext& ctx) {
    model::ProcBuilder& b = ctx.builder();
    return model::seq(iface::send_msg(b, ctx.port("out"), b.k(1)),
                      model::end_label());
  });
  const int r = arch.add_component("R", [](ComponentContext& ctx) {
    model::ProcBuilder& b = ctx.builder();
    const model::LVar v = b.local("v");
    return model::seq(iface::recv_msg(b, ctx.port("in"), v),
                      model::end_label());
  });
  patterns::point_to_point(arch, s, "out", r, "in", "Wire",
                           SendPortKind::SynChecking, RecvPortKind::Blocking,
                           {ChannelKind::Fifo, 3});
  const std::string dot = arch.to_dot();
  EXPECT_NE(dot.find("digraph \"dotty\""), std::string::npos);
  EXPECT_NE(dot.find("\"S\" [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("Fifo(3)"), std::string::npos);
  EXPECT_NE(dot.find("\"S\" -> \"Wire\""), std::string::npos);
  EXPECT_NE(dot.find("\"Wire\" -> \"R\""), std::string::npos);
  EXPECT_NE(dot.find("SynChkSend"), std::string::npos);
}

}  // namespace
}  // namespace pnp
