// Interface-conformance matrix (paper Fig. 3 / experiment E3): the SAME
// component models, built once, compose with every send-port kind, every
// receive-port kind/variant, and every channel kind -- and the closed
// system always verifies free of assertion failures and invalid end
// states. This is the paper's standard-interface claim, checked
// exhaustively with parameterized tests.
#include <gtest/gtest.h>

#include "pnp/pnp.h"

namespace pnp {
namespace {

using namespace model;

constexpr int kMsgs = 2;

ComponentModelFn sender_model() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint out = ctx.port("out");
    const LVar i = b.local("i", 1);
    const LVar st = b.local("st");
    iface::SendMeta meta;
    meta.status_out = &st;
    return seq(do_(alt(seq(guard(b.l(i) <= b.k(kMsgs)),
                           iface::send_msg(b, out, b.l(i), meta),
                           // every port kind must answer with a valid status
                           assert_(b.l(st) == b.k(SEND_SUCC) ||
                                       b.l(st) == b.k(SEND_FAIL),
                                   "SendStatus is well-formed"),
                           assign(i, b.l(i) + b.k(1)))),
                   alt(seq(guard(b.l(i) > b.k(kMsgs)), break_()))),
               end_label());
  };
}

/// Receiver draining up to kMsgs messages; tolerates RECV_FAIL (nonblocking
/// ports) by retrying, so the same model works against both receive kinds.
ComponentModelFn receiver_model() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint in = ctx.port("in");
    const LVar got = b.local("got", 0);
    const LVar v = b.local("v");
    const LVar st = b.local("st");
    iface::RecvMeta meta;
    meta.status_out = &st;
    return seq(
        do_(alt(seq(end_label(), guard(b.l(got) < b.k(kMsgs)),
                    iface::recv_msg(b, in, v, meta),
                    if_(alt(seq(guard(b.l(st) == b.k(RECV_SUCC)),
                                assert_(b.l(v) >= b.k(1) && b.l(v) <= b.k(kMsgs),
                                        "payload intact"),
                                assign(got, b.l(got) + b.k(1)))),
                        alt_else(seq(skip()))))),
            alt(seq(guard(b.l(got) == b.k(kMsgs)), break_()))),
        end_label());
  };
}

struct Combo {
  SendPortKind send;
  RecvPortKind recv;
  RecvPortOpts recv_opts;
  ChannelKind chan;
  int capacity;
};

std::string combo_name(const ::testing::TestParamInfo<Combo>& info) {
  const Combo& c = info.param;
  std::string n = std::string(to_string(c.send)) + "_" +
                  to_string(c.recv, c.recv_opts) + "_" +
                  to_string(ChannelSpec{c.chan, c.capacity});
  for (char& ch : n)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  return n;
}

class BlockMatrix : public ::testing::TestWithParam<Combo> {};

TEST_P(BlockMatrix, ComposesAndVerifiesWithStandardInterfaces) {
  const Combo& c = GetParam();
  Architecture arch("matrix");
  const int s = arch.add_component("S", sender_model());
  const int r = arch.add_component("R", receiver_model());
  patterns::point_to_point(arch, s, "out", r, "in", "L", c.send, c.recv,
                           {c.chan, c.capacity}, c.recv_opts);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out = check_safety(m, bounded(5'000'000));

  // Message loss (lossy channels, checking/nonblocking sends against a full
  // buffer) shows up as livelock -- the blocking receive port keeps retrying
  // against the channel -- never as a protocol wedge. So every combination
  // must be free of assertion failures and invalid end states: that is the
  // standard-interface conformance claim.
  EXPECT_TRUE(out.passed()) << out.report();
  EXPECT_TRUE(out.result.stats.complete);
}

std::vector<Combo> all_combos() {
  std::vector<Combo> out;
  const SendPortKind sends[] = {
      SendPortKind::AsynNonblocking, SendPortKind::AsynBlocking,
      SendPortKind::AsynChecking, SendPortKind::SynBlocking,
      SendPortKind::SynChecking};
  struct RecvCfg {
    RecvPortKind kind;
    RecvPortOpts opts;
  };
  const RecvCfg recvs[] = {
      {RecvPortKind::Blocking, {.remove = true, .selective = false}},
      {RecvPortKind::Nonblocking, {.remove = true, .selective = false}},
  };
  struct ChanCfg {
    ChannelKind kind;
    int cap;
  };
  const ChanCfg chans[] = {{ChannelKind::SingleSlot, 1},
                           {ChannelKind::Fifo, 2},
                           {ChannelKind::Priority, 2},
                           {ChannelKind::LossyFifo, 1}};
  for (SendPortKind s : sends)
    for (const RecvCfg& r : recvs)
      for (const ChanCfg& ch : chans)
        out.push_back({s, r.kind, r.opts, ch.kind, ch.cap});
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllPortChannelCombinations, BlockMatrix,
                         ::testing::ValuesIn(all_combos()), combo_name);

// -- selective receive across channels ----------------------------------------

class SelectiveMatrix : public ::testing::TestWithParam<ChannelKind> {};

TEST_P(SelectiveMatrix, SelectiveReceiveFiltersByTag) {
  // Sender emits tags 1 then 2; a selective blocking receiver asks for tag 2
  // first, then tag 1 -- only random (first-match-anywhere) retrieval can
  // satisfy this without deadlock.
  Architecture arch("selective");
  const int s = arch.add_component("S", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint out = ctx.port("out");
    iface::SendMeta m1, m2;
    m1.tag = 1;
    m2.tag = 2;
    return seq(iface::send_msg(b, out, b.k(11), m1),
               iface::send_msg(b, out, b.k(22), m2), end_label());
  });
  const int r = arch.add_component("R", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint in = ctx.port("in");
    const LVar v = b.local("v");
    iface::RecvMeta want2, want1;
    want2.tag = 2;
    want1.tag = 1;
    return seq(iface::recv_msg(b, in, v, want2),
               assert_(b.l(v) == b.k(22), "tag-2 payload"),
               iface::recv_msg(b, in, v, want1),
               assert_(b.l(v) == b.k(11), "tag-1 payload"), end_label());
  });
  patterns::point_to_point(arch, s, "out", r, "in", "L",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           {GetParam(), 2},
                           {.remove = true, .selective = true});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out = check_safety(m);
  EXPECT_TRUE(out.passed()) << out.report();
}

INSTANTIATE_TEST_SUITE_P(Channels, SelectiveMatrix,
                         ::testing::Values(ChannelKind::SingleSlot,
                                           ChannelKind::Fifo,
                                           ChannelKind::Priority),
                         [](const ::testing::TestParamInfo<ChannelKind>& i) {
                           return std::string(to_string(i.param));
                         });

// -- priority ordering ----------------------------------------------------------

TEST(Blocks, PriorityChannelDeliversLowestPriorityValueFirst) {
  Architecture arch("prio");
  const int s = arch.add_component("S", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint out = ctx.port("out");
    iface::SendMeta lo, hi;
    lo.priority = 9;  // larger value = later delivery
    hi.priority = 1;
    return seq(iface::send_msg(b, out, b.k(100), lo),
               iface::send_msg(b, out, b.k(200), hi), end_label());
  });
  const int r = arch.add_component("R", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint in = ctx.port("in");
    const LVar v = b.local("v");
    // sender fills the queue before the receiver runs: sync handshake via
    // the sender's second SEND_SUCC is not available, so synchronize by
    // receiving only after both messages are queued -- the sender uses
    // AsynBlocking, so SEND_SUCC #2 implies both are stored.
    return seq(iface::recv_msg(b, in, v),
               // whichever arrives first must never be the low-priority one
               // when both were already queued; to make the schedule
               // deterministic the test only asserts the relative order
               // when v is one of the two payloads
               assert_(b.l(v) == b.k(100) || b.l(v) == b.k(200)),
               end_label());
  });
  patterns::point_to_point(arch, s, "out", r, "in", "L",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           {ChannelKind::Priority, 2});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  EXPECT_TRUE(check_safety(m).passed());

  // Deterministic ordering check at the kernel level: selective receive on
  // priority channels is covered by SelectiveMatrix; strict ordering is
  // covered by Kernel.SortedSendOrdersByFirstField.
}

// -- event pool -----------------------------------------------------------------

TEST(Blocks, EventPoolFansOutToAllSubscribers) {
  Architecture arch("pool");
  arch.add_global("got_a", 0);
  arch.add_global("got_b", 0);
  const int pub = arch.add_component("Pub", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    return seq(iface::send_msg(b, ctx.port("out"), b.k(5)), end_label());
  });
  auto subscriber = [](const char* flag) {
    return [flag](ComponentContext& ctx) {
      ProcBuilder& b = ctx.builder();
      const LVar v = b.local("v");
      return seq(iface::recv_msg(b, ctx.port("in"), v),
                 assert_(b.l(v) == b.k(5), "event payload"),
                 assign(ctx.global(flag), b.k(1)), end_label());
    };
  };
  const int s1 = arch.add_component("SubA", subscriber("got_a"));
  const int s2 = arch.add_component("SubB", subscriber("got_b"));
  patterns::publish_subscribe(arch, "Bus", 2,
                              {{pub, "out", SendPortKind::AsynBlocking}},
                              {{s1, "in", RecvPortKind::Blocking, {}},
                               {s2, "in", RecvPortKind::Blocking, {}}});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  // both subscribers always get the event: no deadlock, and in every
  // terminal state both flags are 1 (checked via invariant on end: use
  // safety + the fact that subscribers assert payload and then set flags)
  const SafetyOutcome out = check_safety(m);
  EXPECT_TRUE(out.passed()) << out.report();
}

TEST(Blocks, EventPoolRejectsSynchronousPublishers) {
  Architecture arch("pool");
  const int pub = arch.add_component("Pub", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    return seq(iface::send_msg(b, ctx.port("out"), b.k(1)), end_label());
  });
  const int sub = arch.add_component("Sub", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const LVar v = b.local("v");
    return seq(iface::recv_msg(b, ctx.port("in"), v), end_label());
  });
  const int conn = arch.add_connector("Bus", {ChannelKind::EventPool, 2});
  arch.attach_sender(pub, "out", conn, SendPortKind::SynBlocking);
  arch.attach_receiver(sub, "in", conn, RecvPortKind::Blocking);
  ModelGenerator gen;
  EXPECT_THROW(gen.generate(arch), ModelError);
}

}  // namespace
}  // namespace pnp
