// The paper's section 4 case study as tests: the buggy v1 design violates
// bridge safety, the one-block plug-and-play fix verifies clean with all
// component models reused, and the v2 design is safe as well.
//
// Verification of the fixed designs uses the section 6 optimized-connector
// substitution (GenOptions::optimize_connectors); bench_e10_scaling
// quantifies the faithful-model cost this avoids.
#include <gtest/gtest.h>

#include "bridge/bridge.h"

namespace pnp::bridge {
namespace {

constexpr GenOptions kOpt{.optimize_connectors = true};

TEST(Bridge, BuggyV1ViolatesSafety) {
  BridgeConfig cfg;
  cfg.buggy_async_enter = true;
  Architecture arch = make_v1(cfg);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out =
      check_invariant(m, safety_invariant(gen), "one direction at a time");
  ASSERT_FALSE(out.passed());
  EXPECT_EQ(out.result.violation->kind,
            explore::ViolationKind::InvariantViolated);
  EXPECT_FALSE(out.result.violation->trace.empty());
}

TEST(Bridge, BuggyV1ViolatesSafetyWithOptimizedConnectorsToo) {
  BridgeConfig cfg;
  cfg.buggy_async_enter = true;
  Architecture arch = make_v1(cfg);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch, kOpt);
  EXPECT_GT(gen.last_stats().connectors_optimized, 0);
  const SafetyOutcome out =
      check_invariant(m, safety_invariant(gen), "one direction at a time");
  ASSERT_FALSE(out.passed());
}

TEST(Bridge, BuggyV1CarAssertFires) {
  BridgeConfig cfg;
  cfg.buggy_async_enter = true;
  cfg.car_asserts = true;
  Architecture arch = make_v1(cfg);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out = check_safety(m);
  ASSERT_FALSE(out.passed());
  EXPECT_EQ(out.result.violation->kind, explore::ViolationKind::AssertFailed);
}

TEST(Bridge, PlugAndPlayFixMakesV1SafeAndReusesComponents) {
  BridgeConfig cfg;
  cfg.buggy_async_enter = true;
  Architecture arch = make_v1(cfg);
  ModelGenerator gen;
  const kernel::Machine buggy = gen.generate(arch, kOpt);
  ASSERT_FALSE(
      check_invariant(buggy, safety_invariant(gen), "safety").passed());

  apply_v1_fix(arch, cfg);
  const kernel::Machine fixed = gen.generate(arch, kOpt);
  // zero component rebuilds: the fix touched only the connector
  EXPECT_EQ(gen.last_stats().component_models_built, 0);
  EXPECT_GT(gen.last_stats().component_models_reused, 0);

  const SafetyOutcome out =
      check_invariant(fixed, safety_invariant(gen), "one direction at a time");
  EXPECT_TRUE(out.passed()) << out.report();
  EXPECT_TRUE(out.result.stats.complete);
}

TEST(Bridge, FixedV1RespectsBatchBound) {
  BridgeConfig cfg;
  Architecture arch = make_v1(cfg);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch, kOpt);
  const SafetyOutcome out = check_invariant(
      m,
      safety_invariant(gen) && batch_bound_invariant(gen, cfg.batch_n),
      "safety + batch bound");
  EXPECT_TRUE(out.passed()) << out.report();
}

TEST(Bridge, FixedV1TwoCarsTwoPerTurnSafeWithinBound) {
  BridgeConfig cfg;
  cfg.cars_per_side = 2;
  cfg.batch_n = 2;
  cfg.enter_queue_capacity = 2;
  Architecture arch = make_v1(cfg);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch, kOpt);
  // bounded: no violation within 4M states (bench_e10_scaling pushes this)
  VerifyOptions vopt;
  vopt.max_states = 4'000'000;
  const SafetyOutcome out = check_invariant(
      m, safety_invariant(gen) && batch_bound_invariant(gen, cfg.batch_n),
      "safety + batch bound", vopt);
  EXPECT_TRUE(out.passed()) << out.report();
}

TEST(Bridge, V2SafeWithinBound) {
  // v2's polling controllers (nonblocking receive everywhere, per Fig. 14)
  // put it beyond exhaustive search at test time; this is a bounded check
  // -- no violation within the first 2M states. bench_fig14_bridge_v2
  // pushes the bound further.
  BridgeConfig cfg;
  cfg.enter_queue_capacity = 1;
  Architecture arch = make_v2(cfg);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch, kOpt);
  VerifyOptions vopt;
  vopt.max_states = 2'000'000;
  const SafetyOutcome out = check_invariant(
      m, safety_invariant(gen), "one direction at a time", vopt);
  EXPECT_TRUE(out.passed()) << out.report();
}

}  // namespace
}  // namespace pnp::bridge
