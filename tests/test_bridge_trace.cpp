// Counterexample ergonomics on the case study: the buggy bridge's trace
// speaks the architecture vocabulary (component/port/connector names), can
// be rendered as an MSC, and replays to the violating state.
#include <gtest/gtest.h>

#include "bridge/bridge.h"
#include "trace/msc.h"

namespace pnp::bridge {
namespace {

TEST(BridgeTrace, CounterexampleUsesArchitectureVocabulary) {
  BridgeConfig cfg;
  cfg.buggy_async_enter = true;
  Architecture arch = make_v1(cfg);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out =
      check_invariant(m, safety_invariant(gen), "one direction at a time");
  ASSERT_FALSE(out.passed());
  const trace::Trace& tr = out.result.violation->trace;
  ASSERT_FALSE(tr.empty());

  const std::string text = trace::to_string(tr);
  // the trace names the architecture's entities, not internal indices
  EXPECT_NE(text.find("BlueCar0"), std::string::npos);
  EXPECT_NE(text.find("RedCar0"), std::string::npos);
  EXPECT_NE(text.find("BlueEnter"), std::string::npos) << text.substr(0, 500);
  // the final state shows both directions on the bridge
  EXPECT_NE(text.find("blue_on_bridge=1"), std::string::npos);
  EXPECT_NE(text.find("red_on_bridge=1"), std::string::npos);
}

TEST(BridgeTrace, CounterexampleRendersAsMsc) {
  BridgeConfig cfg;
  cfg.buggy_async_enter = true;
  Architecture arch = make_v1(cfg);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out =
      check_invariant(m, safety_invariant(gen), "one direction at a time");
  ASSERT_FALSE(out.passed());

  trace::MscOptions opt;
  opt.pids = {0, 1, 2, 3};  // the four components (spawned first)
  opt.max_events = 100;
  const std::string msc = trace::render_msc(
      m, trace::steps_of(out.result.violation->trace), opt);
  EXPECT_NE(msc.find("BlueCar0"), std::string::npos);
  EXPECT_FALSE(msc.empty());
}

TEST(BridgeTrace, TraceReplaysToViolation) {
  // replay the recorded steps through the kernel and confirm the invariant
  // breaks exactly at the end
  BridgeConfig cfg;
  cfg.buggy_async_enter = true;
  Architecture arch = make_v1(cfg);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const expr::Ex inv = safety_invariant(gen);
  const SafetyOutcome out = check_invariant(m, inv, "safety");
  ASSERT_FALSE(out.passed());

  kernel::State s = m.initial();
  std::vector<kernel::Succ> succs;
  const auto& steps = out.result.violation->trace.steps;
  for (std::size_t i = 0; i < steps.size(); ++i) {
    succs.clear();
    m.successors(s, succs);
    bool advanced = false;
    for (kernel::Succ& succ : succs) {
      if (succ.second.pid == steps[i].step.pid &&
          succ.second.trans == steps[i].step.trans &&
          succ.second.partner_pid == steps[i].step.partner_pid) {
        s = std::move(succ.first);
        advanced = true;
        break;
      }
    }
    ASSERT_TRUE(advanced) << "trace step " << i << " not replayable: "
                          << steps[i].description;
    if (i + 1 < steps.size()) {
      ASSERT_NE(m.eval_global(inv.ref, s), 0)
          << "invariant broke before the end of the trace at step " << i;
    }
  }
  EXPECT_EQ(m.eval_global(inv.ref, s), 0) << "final state must violate";
}

}  // namespace
}  // namespace pnp::bridge
