// Differential engine-equivalence tests for the codegen subsystem.
//
// The compiled engines (threaded bytecode, AOT .so) promise observable
// equivalence with the kernel interpreter -- byte-identical successor
// streams, Step metadata, undo coverage, verdicts, state counts, and
// counterexample trails (the contract at the top of codegen/engine.h).
// Four layers check that promise:
//   (1) successor-level: full emission streams (state bytes, atomic holder,
//       step fields, undo coverage) compared emit by emit against the
//       interpreter, over BFS-sampled reachable states and random walks, on
//       the paper's fig13/fig14 bridges and the fault-injection blocks;
//   (2) the native skip + resume-token seam: engine-side suppression must
//       equal sink-side filtering for every prefix length, and a simulated
//       pass loop must re-stream the exact reference sequence;
//   (3) search-level: verdicts, stored/matched/transition counts at thread
//       counts 1/2/8, bounded (truncation-order-sensitive) runs, violation
//       trails, and interp<->bytecode checkpoint portability;
//   (4) the fallback ladder: no-toolchain AOT degrades to bytecode (noted),
//       or raises ModelError under strict; cache hits are content-addressed.
//
// AOT cases self-skip when the host has no working toolchain, which keeps
// the CI no-toolchain lane meaningful (it still runs every fallback test).
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "adl/adl.h"
#include "bridge/bridge.h"
#include "codegen/engine.h"
#include "explore/checkpoint.h"
#include "explore/explorer.h"
#include "explore/por.h"
#include "kernel/machine.h"
#include "kernel/state.h"
#include "ltl/product.h"
#include "pnp/generator.h"
#include "support/hash.h"
#include "support/panic.h"

namespace pnp {
namespace {

namespace fs = std::filesystem;
using kernel::Machine;
using kernel::State;
using kernel::Step;

class TempDir {
 public:
  TempDir() {
    const ::testing::TestInfo* ti =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            ("pnp_codegen_" + std::to_string(::getpid()) + "_" +
             std::string(ti->test_suite_name()) + "_" + std::string(ti->name()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

// -- model zoo ---------------------------------------------------------------

/// Heap-allocated and handled by pointer: the machine points into the
/// generator's SystemSpec, so a TestModel must never move once generated.
struct TestModel {
  ModelGenerator gen;
  std::unique_ptr<Machine> m;
  expr::Ref invariant{expr::kNoExpr};
  std::string name;
};

std::unique_ptr<TestModel> make_fig13(bool buggy = false) {
  auto tp = std::make_unique<TestModel>();
  TestModel& t = *tp;
  t.name = buggy ? "fig13-buggy" : "fig13";
  bridge::BridgeConfig cfg;
  cfg.cars_per_side = 1;
  cfg.batch_n = 1;
  cfg.buggy_async_enter = buggy;
  t.m = std::make_unique<Machine>(
      t.gen.generate(bridge::make_v1(cfg), {.optimize_connectors = true}));
  t.invariant = bridge::safety_invariant(t.gen).ref;
  return tp;
}

std::unique_ptr<TestModel> make_fig14() {
  auto tp = std::make_unique<TestModel>();
  TestModel& t = *tp;
  t.name = "fig14";
  bridge::BridgeConfig cfg;
  cfg.cars_per_side = 1;
  cfg.batch_n = 1;
  cfg.enter_queue_capacity = 1;
  t.m = std::make_unique<Machine>(
      t.gen.generate(bridge::make_v2(cfg), {.optimize_connectors = false}));
  t.invariant = bridge::safety_invariant(t.gen).ref;
  return tp;
}

/// The resilience suite's counter, wired through a fault connector block
/// (duplicating / reordering / lossy fifo): rendezvous handshakes, lossy
/// channel semantics, and the fault blocks' extra interleavings all flow
/// through the engines here.
std::unique_ptr<TestModel> make_fault_counter(
    const std::string& channel, const std::string& update = "received++") {
  auto tp = std::make_unique<TestModel>();
  TestModel& t = *tp;
  t.name = "counter-" + channel;
  const std::string src =
      "architecture counter {\n"
      "  global received = 0;\n"
      "  component Sender {\n"
      "    behavior { out_data!7,0,0,0,0,0; out_sig?SEND_SUCC,_; }\n"
      "  }\n"
      "  component Receiver {\n"
      "    behavior {\n"
      "      byte v;\n"
      "      do\n"
      "      :: in_data!0,0,0,0,0,0; in_sig?RECV_SUCC,_;\n"
      "         in_data?v,_,_,_,_,_; " + update + "\n"
      "      od\n"
      "    }\n"
      "  }\n"
      "  connector Link : " + channel + " {\n"
      "    sender Sender.out via asyn_blocking;\n"
      "    receiver Receiver.in via blocking;\n"
      "  }\n"
      "}\n";
  Architecture arch = adl::parse_architecture(src);
  t.m = std::make_unique<Machine>(t.gen.generate(arch));
  t.invariant = t.gen.parse_expr_text("received <= 1").ref;
  return tp;
}

std::vector<std::unique_ptr<TestModel>> model_zoo() {
  std::vector<std::unique_ptr<TestModel>> zoo;
  zoo.push_back(make_fig13());
  zoo.push_back(make_fig14());
  zoo.push_back(make_fault_counter("duplicating_fifo(2)"));
  zoo.push_back(make_fault_counter("reordering_fifo(2)"));
  zoo.push_back(make_fault_counter("lossy_fifo(2)"));
  return zoo;
}

// -- engine construction -----------------------------------------------------

std::unique_ptr<codegen::Engine> make_bytecode(const Machine& m) {
  codegen::EngineOptions o;
  o.kind = codegen::EngineKind::Bytecode;
  return codegen::make_engine(m, o);
}

/// Builds the AOT engine, or null when the host toolchain cannot produce it
/// (the caller GTEST_SKIPs; the fallback itself has dedicated tests).
std::unique_ptr<codegen::Engine> try_aot(const Machine& m,
                                         const std::string& cache_dir) {
  codegen::EngineOptions o;
  o.kind = codegen::EngineKind::Aot;
  o.cache_dir = cache_dir;
  std::string note;
  auto e = codegen::make_engine(m, o, &note);
  if (e == nullptr || e->kind() != codegen::EngineKind::Aot) return nullptr;
  return e;
}

#define SKIP_WITHOUT_AOT(eng) \
  if ((eng) == nullptr) GTEST_SKIP() << "no host toolchain for the aot engine"

// -- emission capture --------------------------------------------------------

/// Everything one emit exposes to the search: successor bytes, atomic
/// holder, step metadata, and the undo log's write coverage. The undo pairs
/// are compared as slot->previous-value maps: the engine contract requires
/// coverage of every written slot, not a particular log order.
struct Emission {
  std::vector<expr::Value> mem;
  int atomic_pid;
  int pid, trans, partner_pid, partner_trans;
  int kind, chan;
  bool assert_failed;
  std::vector<expr::Value> msg;
  std::vector<std::pair<int, expr::Value>> undo;

  bool operator==(const Emission&) const = default;
};

std::string to_string(const Emission& e) {
  std::string s = "pid=" + std::to_string(e.pid) +
                  " trans=" + std::to_string(e.trans) +
                  " partner=" + std::to_string(e.partner_pid) + "/" +
                  std::to_string(e.partner_trans) +
                  " kind=" + std::to_string(e.kind) +
                  " chan=" + std::to_string(e.chan) +
                  " assert=" + std::to_string(e.assert_failed) +
                  " atomic=" + std::to_string(e.atomic_pid) + " mem=[";
  for (expr::Value v : e.mem) s += std::to_string(v) + ",";
  s += "] undo=[";
  for (auto [slot, old] : e.undo)
    s += std::to_string(slot) + ":" + std::to_string(old) + ",";
  return s + "]";
}

class Recorder final : public kernel::SuccSink {
 public:
  Recorder(const kernel::SuccScratch& scr, int stop_after = -1)
      : scr_(scr), stop_after_(stop_after) {}

  bool on_successor(const State& ns, const Step& st) override {
    Emission e;
    e.mem.assign(ns.mem.begin(), ns.mem.end());
    e.atomic_pid = ns.atomic_pid;
    e.pid = st.pid;
    e.trans = st.trans;
    e.partner_pid = st.partner_pid;
    e.partner_trans = st.partner_trans;
    e.kind = static_cast<int>(st.event.kind);
    e.chan = st.event.chan;
    e.assert_failed = st.assert_failed;
    e.msg = st.event.msg;
    e.undo.assign(scr_.undo.begin(), scr_.undo.end());
    std::sort(e.undo.begin(), e.undo.end());
    e.undo.erase(std::unique(e.undo.begin(), e.undo.end()), e.undo.end());
    out.push_back(std::move(e));
    return stop_after_ < 0 || static_cast<int>(out.size()) < stop_after_;
  }

  std::vector<Emission> out;

 private:
  const kernel::SuccScratch& scr_;
  int stop_after_;
};

std::vector<Emission> interp_emissions(const Machine& m, const State& s) {
  kernel::SuccScratch scr;
  Recorder rec(scr);
  m.visit_successors(s, scr, rec);
  return std::move(rec.out);
}

std::vector<Emission> engine_emissions(const codegen::Engine& e,
                                       const State& s, std::uint32_t skip = 0,
                                       std::uint64_t* resume = nullptr) {
  kernel::SuccScratch scr;
  Recorder rec(scr);
  e.visit_successors(s, scr, rec, skip, resume);
  return std::move(rec.out);
}

void expect_same_stream(const std::vector<Emission>& ref,
                        const std::vector<Emission>& got,
                        const std::string& what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(ref[i], got[i]) << what << " emit " << i << "\n  interp: "
                              << to_string(ref[i]) << "\n  engine: "
                              << to_string(got[i]);
}

/// Collects up to `limit` distinct reachable states, breadth-first, so the
/// differential sweep exercises deep states (full channels, atomic holders)
/// and not just the initial neighborhood.
std::vector<State> reachable_states(const Machine& m, std::size_t limit) {
  std::vector<State> out;
  std::vector<std::string> seen;
  std::vector<kernel::Succ> succs;
  out.push_back(m.initial());
  for (std::size_t i = 0; i < out.size() && out.size() < limit; ++i) {
    succs.clear();
    m.successors(out[i], succs);
    for (auto& [ns, st] : succs) {
      std::string key;
      kernel::encode_key_into(ns, key);
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
      seen.push_back(key);
      out.push_back(ns);
      if (out.size() >= limit) break;
    }
  }
  return out;
}

// -- (1) successor-level differential sweeps ---------------------------------

TEST(EngineDiff, SuccessorStreamsMatchInterpEverywhere) {
  TempDir cache;
  for (const auto& tp : model_zoo()) {
    const TestModel& t = *tp;
    const auto bc = make_bytecode(*t.m);
    const auto aot = try_aot(*t.m, cache.str());
    const std::vector<State> states = reachable_states(*t.m, 400);
    ASSERT_GT(states.size(), 10u) << t.name;
    for (const State& s : states) {
      const std::vector<Emission> ref = interp_emissions(*t.m, s);
      expect_same_stream(ref, engine_emissions(*bc, s), t.name + "/bytecode");
      if (aot)
        expect_same_stream(ref, engine_emissions(*aot, s), t.name + "/aot");
    }
  }
}

TEST(EngineDiff, RandomWalksMatch) {
  TempDir cache;
  for (const auto& tp : model_zoo()) {
    const TestModel& t = *tp;
    const auto bc = make_bytecode(*t.m);
    const auto aot = try_aot(*t.m, cache.str());
    for (std::uint32_t seed = 1; seed <= 8; ++seed) {
      std::mt19937 rng(seed);
      State s = t.m->initial();
      for (int depth = 0; depth < 120; ++depth) {
        const std::vector<Emission> ref = interp_emissions(*t.m, s);
        expect_same_stream(ref, engine_emissions(*bc, s),
                           t.name + "/bytecode walk");
        if (aot)
          expect_same_stream(ref, engine_emissions(*aot, s),
                             t.name + "/aot walk");
        if (ref.empty()) break;
        const Emission& pick = ref[rng() % ref.size()];
        if (pick.assert_failed) break;
        s.mem.assign(pick.mem.begin(), pick.mem.end());
        s.atomic_pid = pick.atomic_pid;
      }
    }
  }
}

TEST(EngineDiff, VisitSuccessorsOfMatchesPerProcess) {
  TempDir cache;
  const auto tp = make_fig13();
  const TestModel& t = *tp;
  const auto bc = make_bytecode(*t.m);
  const auto aot = try_aot(*t.m, cache.str());
  for (const State& s : reachable_states(*t.m, 200)) {
    for (int pid = 0; pid < t.m->n_processes(); ++pid) {
      kernel::SuccScratch scr;
      Recorder ref_rec(scr);
      const bool ref_any = t.m->visit_successors_of(s, pid, scr, ref_rec);
      kernel::SuccScratch scr2;
      Recorder bc_rec(scr2);
      ASSERT_EQ(ref_any, bc->visit_successors_of(s, pid, scr2, bc_rec));
      expect_same_stream(ref_rec.out, bc_rec.out, "bytecode visit_of");
      if (aot) {
        kernel::SuccScratch scr3;
        Recorder aot_rec(scr3);
        ASSERT_EQ(ref_any, aot->visit_successors_of(s, pid, scr3, aot_rec));
        expect_same_stream(ref_rec.out, aot_rec.out, "aot visit_of");
      }
    }
  }
}

// -- (2) the native skip + resume-token seam ---------------------------------

TEST(EngineDiff, NativeSkipEqualsSinkSideFiltering) {
  TempDir cache;
  for (const auto& tp : model_zoo()) {
    const TestModel& t = *tp;
    const auto bc = make_bytecode(*t.m);
    const auto aot = try_aot(*t.m, cache.str());
    for (const State& s : reachable_states(*t.m, 60)) {
      const std::vector<Emission> ref = interp_emissions(*t.m, s);
      for (std::uint32_t k = 0; k <= ref.size() + 1; ++k) {
        const std::vector<Emission> want(
            ref.begin() + std::min<std::size_t>(k, ref.size()), ref.end());
        expect_same_stream(want, engine_emissions(*bc, s, k),
                           t.name + "/bytecode skip=" + std::to_string(k));
        if (aot)
          expect_same_stream(want, engine_emissions(*aot, s, k),
                             t.name + "/aot skip=" + std::to_string(k));
      }
    }
  }
}

/// Mirrors the DFS pass loop exactly: visit with skip = handled count and a
/// threaded resume token, stopping at the first surfaced candidate each
/// pass. The concatenation of the surfaced candidates must reproduce the
/// full reference stream -- each exactly once, in order.
void check_pass_loop(const codegen::Engine& e, const Machine& m,
                     const State& s, const std::string& what) {
  const std::vector<Emission> ref = interp_emissions(m, s);
  std::vector<Emission> seen;
  std::uint64_t tok = 0;
  for (std::size_t pass = 0; pass <= ref.size() + 1; ++pass) {
    kernel::SuccScratch scr;
    Recorder rec(scr, /*stop_after=*/1);
    e.visit_successors(s, scr, rec,
                       static_cast<std::uint32_t>(seen.size()), &tok);
    if (rec.out.empty()) break;
    seen.push_back(std::move(rec.out.front()));
  }
  expect_same_stream(ref, seen, what);
}

TEST(EngineDiff, ResumeTokenPassLoopReproducesStream) {
  TempDir cache;
  for (const auto& tp : model_zoo()) {
    const TestModel& t = *tp;
    const auto bc = make_bytecode(*t.m);
    const auto aot = try_aot(*t.m, cache.str());
    for (const State& s : reachable_states(*t.m, 80)) {
      check_pass_loop(*bc, *t.m, s, t.name + "/bytecode pass loop");
      if (aot) check_pass_loop(*aot, *t.m, s, t.name + "/aot pass loop");
    }
  }
}

// -- (3) search-level equivalence --------------------------------------------

explore::Result run_explore(const TestModel& t, const codegen::Engine* eng,
                            int threads, std::uint64_t max_states = 0,
                            bool want_trace = false) {
  explore::Options o;
  o.invariant = t.invariant;
  o.invariant_name = "safety";
  o.want_trace = want_trace;
  o.threads = threads;
  o.engine = eng;
  if (max_states > 0) o.max_states = max_states;
  return explore::explore(*t.m, o);
}

TEST(EngineExplore, Fig13FullSpaceAllEnginesAllThreadCounts) {
  TempDir cache;
  const auto tp = make_fig13();
  const TestModel& t = *tp;
  const auto bc = make_bytecode(*t.m);
  const auto aot = try_aot(*t.m, cache.str());
  const explore::Result ref = run_explore(t, nullptr, 1);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(ref.stats.complete);
  ASSERT_GT(ref.stats.states_stored, 10000u);
  for (const int threads : {1, 2, 8}) {
    for (const codegen::Engine* eng :
         {static_cast<const codegen::Engine*>(bc.get()),
         static_cast<const codegen::Engine*>(aot.get())}) {
      if (eng == nullptr) continue;
      const explore::Result r = run_explore(t, eng, threads);
      const std::string what = std::string(
          codegen::engine_kind_name(eng->kind())) +
          " threads=" + std::to_string(threads);
      EXPECT_TRUE(r.ok()) << what;
      EXPECT_TRUE(r.stats.complete) << what;
      EXPECT_EQ(r.stats.states_stored, ref.stats.states_stored) << what;
      EXPECT_EQ(r.stats.states_matched, ref.stats.states_matched) << what;
      EXPECT_EQ(r.stats.transitions, ref.stats.transitions) << what;
    }
  }
}

TEST(EngineExplore, Fig14BoundedTruncationMatches) {
  // A bounded run's totals depend on the exact traversal order, so equal
  // counts here pin the engines to the interpreter's candidate order, not
  // just its candidate sets.
  TempDir cache;
  const auto tp = make_fig14();
  const TestModel& t = *tp;
  const auto bc = make_bytecode(*t.m);
  const auto aot = try_aot(*t.m, cache.str());
  const std::uint64_t bound = 60'000;
  const explore::Result ref = run_explore(t, nullptr, 1, bound);
  ASSERT_TRUE(ref.ok());
  ASSERT_FALSE(ref.stats.complete);
  ASSERT_EQ(ref.stats.truncation, explore::TruncationReason::MaxStates);
  for (const codegen::Engine* eng :
       {static_cast<const codegen::Engine*>(bc.get()),
         static_cast<const codegen::Engine*>(aot.get())}) {
    if (eng == nullptr) continue;
    const explore::Result r = run_explore(t, eng, 1, bound);
    const std::string what = codegen::engine_kind_name(eng->kind());
    EXPECT_EQ(r.stats.truncation, explore::TruncationReason::MaxStates)
        << what;
    EXPECT_EQ(r.stats.states_stored, ref.stats.states_stored) << what;
    EXPECT_EQ(r.stats.states_matched, ref.stats.states_matched) << what;
  }
}

TEST(EngineExplore, ViolationTrailsMatch) {
  TempDir cache;
  // the buggy bridge (race on async enter) and the counting receiver
  // behind a duplicating fifo both produce invariant violations
  std::vector<std::unique_ptr<TestModel>> models;
  models.push_back(make_fig13(/*buggy=*/true));
  models.push_back(make_fault_counter("duplicating_fifo(2)"));
  for (const auto& tp : models) {
    const TestModel& t = *tp;
    const auto bc = make_bytecode(*t.m);
    const auto aot = try_aot(*t.m, cache.str());
    const explore::Result ref =
        run_explore(t, nullptr, 1, 0, /*want_trace=*/true);
    ASSERT_TRUE(ref.violation.has_value()) << t.name;
    for (const codegen::Engine* eng :
         {static_cast<const codegen::Engine*>(bc.get()),
         static_cast<const codegen::Engine*>(aot.get())}) {
      if (eng == nullptr) continue;
      const explore::Result r = run_explore(t, eng, 1, 0, true);
      const std::string what =
          t.name + "/" + codegen::engine_kind_name(eng->kind());
      ASSERT_TRUE(r.violation.has_value()) << what;
      EXPECT_EQ(r.violation->kind, ref.violation->kind) << what;
      const auto& rs = ref.violation->trace.steps;
      const auto& gs = r.violation->trace.steps;
      ASSERT_EQ(rs.size(), gs.size()) << what;
      for (std::size_t i = 0; i < rs.size(); ++i) {
        EXPECT_EQ(rs[i].step.pid, gs[i].step.pid) << what << " step " << i;
        EXPECT_EQ(rs[i].step.trans, gs[i].step.trans) << what << " step " << i;
      }
      EXPECT_EQ(ref.violation->trace.final_state, r.violation->trace.final_state)
          << what;
    }
  }
}

TEST(EngineCheckpoint, PortableBetweenInterpAndBytecode) {
  // Checkpoints are raw state arrays -- engine-independent by design
  // (RunConfig::digest() excludes the engine for the same reason). Cut a
  // run under one engine, resume under the other, in both directions.
  const auto tp = make_fig13();
  const TestModel& t = *tp;
  const auto bc = make_bytecode(*t.m);
  const explore::Result ref = run_explore(t, nullptr, 1);
  ASSERT_TRUE(ref.stats.complete);
  struct Leg {
    const codegen::Engine* cut;
    const codegen::Engine* resume;
    const char* what;
  };
  for (const Leg leg : {Leg{nullptr, bc.get(), "interp->bytecode"},
                        Leg{bc.get(), nullptr, "bytecode->interp"}}) {
    TempDir dir;
    const std::string path = (dir.path() / "cut.pnp.ckpt").string();
    explore::Options base;
    base.invariant = t.invariant;
    base.invariant_name = "safety";
    base.checkpoint_path = path;
    base.config_digest = "codegen-portability";
    explore::Options cut = base;
    cut.engine = leg.cut;
    cut.max_states = 4000;
    const explore::Result first = explore::explore(*t.m, cut);
    ASSERT_FALSE(first.stats.complete) << leg.what;
    const explore::Checkpoint c = explore::read_checkpoint(path);
    explore::Options ro = base;
    ro.engine = leg.resume;
    ro.resume_from = &c;
    const explore::Result r = explore::explore(*t.m, ro);
    EXPECT_TRUE(r.ok()) << leg.what;
    EXPECT_TRUE(r.stats.resumed) << leg.what;
    EXPECT_TRUE(r.stats.complete) << leg.what;
    EXPECT_EQ(r.stats.states_stored, ref.stats.states_stored) << leg.what;
  }
}

// -- (4) fallback ladder + artifact cache ------------------------------------

TEST(EngineFallback, MissingToolchainFallsBackToBytecode) {
  TempDir cache;
  const auto tp = make_fig13();
  const TestModel& t = *tp;
  codegen::EngineOptions o;
  o.kind = codegen::EngineKind::Aot;
  o.cache_dir = cache.str();
  o.cxx = "/nonexistent/pnp-no-such-compiler";
  std::string note;
  const auto e = codegen::make_engine(*t.m, o, &note);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind(), codegen::EngineKind::Bytecode);
  EXPECT_NE(note.find("using bytecode"), std::string::npos) << note;
  // the fallback engine is still a correct engine
  const State init = t.m->initial();
  expect_same_stream(interp_emissions(*t.m, init), engine_emissions(*e, init),
                     "fallback bytecode");
}

TEST(EngineFallback, StrictModeRaisesModelError) {
  TempDir cache;
  const auto tp = make_fig13();
  const TestModel& t = *tp;
  codegen::EngineOptions o;
  o.kind = codegen::EngineKind::Aot;
  o.cache_dir = cache.str();
  o.cxx = "/nonexistent/pnp-no-such-compiler";
  o.strict = true;
  EXPECT_THROW(codegen::make_engine(*t.m, o), ModelError);
}

TEST(EngineCache, SecondBuildIsAContentAddressedHit) {
  TempDir cache;
  const auto tp = make_fig13();
  const TestModel& t = *tp;
  const auto first = try_aot(*t.m, cache.str());
  SKIP_WITHOUT_AOT(first);
  const auto count_so = [&] {
    std::size_t n = 0;
    for (const auto& ent : fs::directory_iterator(cache.path()))
      if (ent.path().extension() == ".so") ++n;
    return n;
  };
  ASSERT_EQ(count_so(), 1u);
  // same machine -> same digest -> the exact artifact is reused
  const auto second = try_aot(*t.m, cache.str());
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(count_so(), 1u);
  // a semantically different machine gets its own artifact
  const auto other = make_fault_counter("duplicating_fifo(2)");
  const auto third = try_aot(*other->m, cache.str());
  ASSERT_NE(third, nullptr);
  EXPECT_EQ(count_so(), 2u);
}

TEST(EngineCache, MachineDigestIsStableAcrossRegeneration) {
  // Two independent generations of the same architecture must agree (the
  // digest keys the shared artifact cache across processes and runs), and
  // distinct machines must not.
  const auto a = make_fig13();
  const auto b = make_fig13();
  EXPECT_EQ(codegen::machine_digest(*a->m), codegen::machine_digest(*b->m));
  const auto c = make_fig14();
  EXPECT_NE(codegen::machine_digest(*a->m), codegen::machine_digest(*c->m));
}

// -- (5) engine-backed POR ---------------------------------------------------

TEST(EnginePor, AmpleChoicesMatchInterpOnReachableSample) {
  // The ample decision is a conjunction over the streamed successors of each
  // candidate process, so byte-identical streams must give the identical
  // choice (pid or -1) in every reachable state.
  TempDir cache;
  std::vector<std::unique_ptr<TestModel>> models;
  models.push_back(make_fig13());
  models.push_back(make_fault_counter("duplicating_fifo(2)"));
  for (const auto& tp : models) {
    const TestModel& t = *tp;
    const auto bc = make_bytecode(*t.m);
    const auto aot = try_aot(*t.m, cache.str());
    const std::vector<State> sample = reachable_states(*t.m, 1500);
    for (const codegen::Engine* eng :
         {static_cast<const codegen::Engine*>(bc.get()),
          static_cast<const codegen::Engine*>(aot.get())}) {
      if (eng == nullptr) continue;
      const std::string what =
          t.name + "/" + codegen::engine_kind_name(eng->kind());
      kernel::SuccScratch scr_i;
      kernel::SuccScratch scr_e;
      for (std::size_t i = 0; i < sample.size(); ++i) {
        const int want =
            explore::por_choose(*t.m, sample[i], nullptr, scr_i);
        const int got =
            explore::por_choose(*t.m, sample[i], nullptr, scr_e, eng);
        ASSERT_EQ(want, got) << what << " state " << i;
      }
    }
  }
}

TEST(EnginePor, ReducedSearchTotalsMatchAtAllThreadCounts) {
  // Full POR runs: the reduced graph (and therefore every count) must be
  // engine-independent at each thread count. The reference is the interp
  // POR run at the SAME thread count -- sequential POR applies the C3
  // stack proviso while parallel POR is proviso-free, so the reduced
  // graphs legitimately differ across thread counts, never across engines.
  TempDir cache;
  const auto tp = make_fig13();
  const TestModel& t = *tp;
  const auto bc = make_bytecode(*t.m);
  const auto aot = try_aot(*t.m, cache.str());
  for (const int threads : {1, 2, 8}) {
    explore::Options base;
    base.invariant = t.invariant;
    base.invariant_name = "safety";
    base.por = true;
    base.threads = threads;
    const explore::Result ref = explore::explore(*t.m, base);
    ASSERT_TRUE(ref.ok());
    ASSERT_TRUE(ref.stats.complete);
    for (const codegen::Engine* eng :
         {static_cast<const codegen::Engine*>(bc.get()),
          static_cast<const codegen::Engine*>(aot.get())}) {
      if (eng == nullptr) continue;
      explore::Options o = base;
      o.engine = eng;
      const explore::Result r = explore::explore(*t.m, o);
      const std::string what = std::string(
          codegen::engine_kind_name(eng->kind())) +
          " threads=" + std::to_string(threads);
      EXPECT_TRUE(r.ok()) << what;
      EXPECT_TRUE(r.stats.complete) << what;
      EXPECT_EQ(r.stats.states_stored, ref.stats.states_stored) << what;
      EXPECT_EQ(r.stats.states_matched, ref.stats.states_matched) << what;
      EXPECT_EQ(r.stats.transitions, ref.stats.transitions) << what;
    }
  }
}

TEST(EnginePor, BfsReducedSearchMatches) {
  // BFS takes the por_successors (choose + expand in one call) path.
  TempDir cache;
  const auto tp = make_fig13();
  const TestModel& t = *tp;
  const auto bc = make_bytecode(*t.m);
  const auto aot = try_aot(*t.m, cache.str());
  explore::Options base;
  base.invariant = t.invariant;
  base.invariant_name = "safety";
  base.por = true;
  base.bfs = true;
  const explore::Result ref = explore::explore(*t.m, base);
  ASSERT_TRUE(ref.ok());
  ASSERT_TRUE(ref.stats.complete);
  for (const codegen::Engine* eng :
       {static_cast<const codegen::Engine*>(bc.get()),
        static_cast<const codegen::Engine*>(aot.get())}) {
    if (eng == nullptr) continue;
    explore::Options o = base;
    o.engine = eng;
    const explore::Result r = explore::explore(*t.m, o);
    const std::string what = codegen::engine_kind_name(eng->kind());
    EXPECT_TRUE(r.ok()) << what;
    EXPECT_EQ(r.stats.states_stored, ref.stats.states_stored) << what;
    EXPECT_EQ(r.stats.transitions, ref.stats.transitions) << what;
  }
}

// -- (6) engine-backed LTL product search ------------------------------------

TEST(EngineLtl, ProductSearchAndTrailsMatchAcrossEnginesAndThreads) {
  // System-side successor generation through the engine must leave the
  // nested-DFS product search observably unchanged: verdict, stored /
  // transition counts and the lasso trail at threads=1 (fully
  // deterministic), verdict at threads 2/8 (racing workers -- whichever
  // finishes is authoritative, but the winner's identity is timing
  // dependent, so counts are not comparable).
  TempDir cache;
  struct Case {
    std::unique_ptr<TestModel> t;
    bool holds;
  };
  std::vector<Case> cases;
  cases.push_back({make_fig13(), true});
  cases.push_back({make_fig13(/*buggy=*/true), false});
  for (Case& c : cases) {
    TestModel& t = *c.t;
    t.gen.add_prop("safe", bridge::safety_invariant(t.gen));
    const bool have_aot = try_aot(*t.m, cache.str()) != nullptr;
    ltl::CheckOptions base;
    base.engine_cache_dir = cache.str();
    const ltl::LtlResult ref = ltl::check_ltl(*t.m, t.gen.props(), "G safe",
                                              base);
    ASSERT_EQ(ref.holds, c.holds) << t.name;
    for (const codegen::EngineKind kind :
         {codegen::EngineKind::Bytecode, codegen::EngineKind::Aot}) {
      if (kind == codegen::EngineKind::Aot && !have_aot) continue;
      const std::string what =
          t.name + "/" + codegen::engine_kind_name(kind);
      ltl::CheckOptions o = base;
      o.engine = kind;
      const ltl::LtlResult r = ltl::check_ltl(*t.m, t.gen.props(), "G safe",
                                              o);
      EXPECT_EQ(r.holds, ref.holds) << what;
      EXPECT_EQ(r.engine_requested, kind) << what;
      EXPECT_EQ(r.engine_actual, kind) << what;
      EXPECT_EQ(r.buchi_states, ref.buchi_states) << what;
      EXPECT_EQ(r.stats.states_stored, ref.stats.states_stored) << what;
      EXPECT_EQ(r.stats.transitions, ref.stats.transitions) << what;
      ASSERT_EQ(r.violation.has_value(), ref.violation.has_value()) << what;
      if (ref.violation.has_value()) {
        const auto& rs = ref.violation->trace.steps;
        const auto& gs = r.violation->trace.steps;
        ASSERT_EQ(rs.size(), gs.size()) << what;
        for (std::size_t i = 0; i < rs.size(); ++i) {
          EXPECT_EQ(rs[i].step.pid, gs[i].step.pid) << what << " step " << i;
          EXPECT_EQ(rs[i].step.trans, gs[i].step.trans)
              << what << " step " << i;
        }
      }
      for (const int threads : {2, 8}) {
        ltl::CheckOptions ro = o;
        ro.threads = threads;
        const ltl::LtlResult rr =
            ltl::check_ltl(*t.m, t.gen.props(), "G safe", ro);
        EXPECT_EQ(rr.holds, ref.holds)
            << what << " threads=" << threads;
        EXPECT_EQ(rr.engine_actual, kind) << what << " threads=" << threads;
      }
    }
  }
}

// -- (7) the specialized encode seam -----------------------------------------

TEST(EngineEncode, DirtyMasksAndRegionHashesAreBitExact) {
  // The compressor derives stripe choice, fingerprint, and probe sequence
  // from the region hash, so the engine's open-coded hash must be bit-exact
  // fast_hash64 and the undo->region mask must match region_of_slot -- any
  // drift would split identical components and corrupt visited-set
  // identity (the search-level tests would see inflated state counts; this
  // pins the seam directly).
  TempDir cache;
  std::vector<std::unique_ptr<TestModel>> models;
  models.push_back(make_fig13());
  models.push_back(make_fault_counter("duplicating_fifo(2)"));
  for (const auto& tp : models) {
    const TestModel& t = *tp;
    const auto regions = t.m->layout().regions();
    ASSERT_LE(regions.size(), 64u) << t.name;
    const auto bc = make_bytecode(*t.m);
    const auto aot = try_aot(*t.m, cache.str());
    const std::vector<State> sample = reachable_states(*t.m, 300);
    for (const codegen::Engine* eng :
         {static_cast<const codegen::Engine*>(bc.get()),
          static_cast<const codegen::Engine*>(aot.get())}) {
      if (eng == nullptr) continue;
      const std::string what =
          t.name + "/" + codegen::engine_kind_name(eng->kind());
      ASSERT_TRUE(eng->encode_support()) << what;
      for (const State& s : sample) {
        for (std::size_t r = 0; r < regions.size(); ++r) {
          const auto [begin, width] = regions[r];
          const std::uint64_t want = fast_hash64(
              {reinterpret_cast<const std::uint8_t*>(s.mem.data() + begin),
               static_cast<std::size_t>(width) * sizeof(expr::Value)});
          ASSERT_EQ(want, eng->region_hash(s.mem.data(), static_cast<int>(r)))
              << what << " region " << r;
        }
      }
      // one-slot undo logs: each slot dirties exactly its owning region
      for (std::size_t r = 0; r < regions.size(); ++r) {
        const auto [begin, width] = regions[r];
        for (int slot = begin; slot < begin + width; ++slot) {
          const std::pair<int, expr::Value> undo[] = {{slot, 0}};
          EXPECT_EQ(eng->dirty_regions(undo, 1), std::uint64_t{1} << r)
              << what << " slot " << slot;
        }
      }
      // a full-state undo log dirties every region
      std::vector<std::pair<int, expr::Value>> all;
      for (int slot = 0; slot < t.m->layout().size(); ++slot)
        all.push_back({slot, 0});
      EXPECT_EQ(eng->dirty_regions(all.data(), all.size()),
                regions.size() == 64
                    ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << regions.size()) - 1)
          << what;
    }
  }
}

TEST(EngineCheckpoint, BfsCutPortableAcrossEnginesWithDeltaEncode) {
  // POR-less BFS cut under one engine, resumed under another: the resumed
  // leg re-interns restored raw states and then runs the resuming engine's
  // specialized delta path (dirty_regions + region_hash feeding
  // compress_delta_masked), so equal final counts certify the new encode
  // path against both the interpreter and the other backend.
  TempDir cache;
  const auto tp = make_fig13();
  const TestModel& t = *tp;
  const auto bc = make_bytecode(*t.m);
  const auto aot = try_aot(*t.m, cache.str());
  explore::Options full;
  full.invariant = t.invariant;
  full.invariant_name = "safety";
  full.bfs = true;
  const explore::Result ref = explore::explore(*t.m, full);
  ASSERT_TRUE(ref.stats.complete);
  struct Leg {
    const codegen::Engine* cut;
    const codegen::Engine* resume;
    std::string what;
  };
  std::vector<Leg> legs = {{nullptr, bc.get(), "interp->bytecode"},
                           {bc.get(), nullptr, "bytecode->interp"}};
  if (aot != nullptr) {
    legs.push_back({aot.get(), nullptr, "aot->interp"});
    legs.push_back({bc.get(), aot.get(), "bytecode->aot"});
  }
  for (const Leg& leg : legs) {
    TempDir dir;
    const std::string path = (dir.path() / "cut.pnp.ckpt").string();
    explore::Options base = full;
    base.checkpoint_path = path;
    base.config_digest = "codegen-bfs-portability";
    explore::Options cut = base;
    cut.engine = leg.cut;
    cut.max_states = 4000;
    const explore::Result first = explore::explore(*t.m, cut);
    ASSERT_FALSE(first.stats.complete) << leg.what;
    const explore::Checkpoint c = explore::read_checkpoint(path);
    explore::Options ro = base;
    ro.engine = leg.resume;
    ro.resume_from = &c;
    const explore::Result r = explore::explore(*t.m, ro);
    EXPECT_TRUE(r.ok()) << leg.what;
    EXPECT_TRUE(r.stats.resumed) << leg.what;
    EXPECT_TRUE(r.stats.complete) << leg.what;
    EXPECT_EQ(r.stats.states_stored, ref.stats.states_stored) << leg.what;
  }
}

}  // namespace
}  // namespace pnp
