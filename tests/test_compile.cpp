// Compiler tests: CFG shape, else-edge placement, break targets, atomic
// marking, end labels, validation diagnostics, and transition rendering.
#include <gtest/gtest.h>

#include "compile/compiler.h"
#include "model/builder.h"
#include "support/panic.h"

namespace pnp::compile {
namespace {

using namespace model;

SystemSpec base_sys() {
  SystemSpec sys;
  sys.add_channel("c", 1, 1);
  sys.add_global("g");
  return sys;
}

TEST(Compile, LinearSequenceProducesChainOfTransitions) {
  SystemSpec sys = base_sys();
  ProcBuilder b(sys, "P");
  const LVar x = b.local("x");
  b.finish(seq(assign(x, b.k(1)), assign(x, b.k(2)), assign(x, b.k(3))));
  sys.spawn("p", 0, {});
  const auto procs = compile(sys);
  const CompiledProc& p = procs[0];
  EXPECT_EQ(p.trans.size(), 3u);
  EXPECT_EQ(p.n_pcs, 4);
  // final pc is a valid end state, intermediate ones are not
  EXPECT_TRUE(p.valid_end[3]);
  EXPECT_FALSE(p.valid_end[1]);
}

TEST(Compile, IfBranchesShareEntryAndExit) {
  SystemSpec sys = base_sys();
  ProcBuilder b(sys, "P");
  const LVar x = b.local("x");
  b.finish(seq(if_(alt(seq(guard(b.l(x) == b.k(0)), assign(x, b.k(1)))),
                   alt(seq(guard(b.l(x) == b.k(1)), assign(x, b.k(2))))),
               assign(x, b.k(9))));
  sys.spawn("p", 0, {});
  const auto procs = compile(sys);
  const CompiledProc& p = procs[0];
  // both guards depart from the entry pc
  int guards_at_entry = 0;
  for (const Transition& t : p.trans)
    if (t.op == OpKind::Guard && t.src == p.entry) ++guards_at_entry;
  EXPECT_EQ(guards_at_entry, 2);
  // both branch tails converge: one assign per branch plus the final one
  int assigns = 0;
  for (const Transition& t : p.trans)
    if (t.op == OpKind::Assign) ++assigns;
  EXPECT_EQ(assigns, 3);
  // the final assign has exactly one source pc, shared by both branches
  int final_src = -1;
  for (const Transition& t : p.trans) {
    bool is_branch_guard = t.op == OpKind::Guard && t.src == p.entry;
    if (t.op == OpKind::Assign && !is_branch_guard && t.dst != p.entry &&
        p.valid_end[static_cast<std::size_t>(t.dst)]) {
      final_src = t.src;
    }
  }
  EXPECT_GE(final_src, 0);
}

TEST(Compile, ElseBranchCompilesToElseEdge) {
  SystemSpec sys = base_sys();
  ProcBuilder b(sys, "P");
  const LVar x = b.local("x");
  b.finish(seq(if_(alt(seq(guard(b.l(x) == b.k(0)))),
                   alt_else(seq(assign(x, b.k(7)))))));
  sys.spawn("p", 0, {});
  const auto procs = compile(sys);
  int else_edges = 0;
  for (const Transition& t : procs[0].trans)
    if (t.op == OpKind::Else) ++else_edges;
  EXPECT_EQ(else_edges, 1);
}

TEST(Compile, DoLoopsBackAndBreakLeaves) {
  SystemSpec sys = base_sys();
  ProcBuilder b(sys, "P");
  const LVar x = b.local("x");
  b.finish(seq(do_(alt(seq(guard(b.l(x) < b.k(3)), assign(x, b.l(x) + b.k(1)))),
                   alt(seq(guard(b.l(x) == b.k(3)), break_()))),
               assign(x, b.k(0))));
  sys.spawn("p", 0, {});
  const auto procs = compile(sys);
  const CompiledProc& p = procs[0];
  // the loop-body assign leads back to the loop head (entry)
  bool loops_back = false;
  for (const Transition& t : p.trans)
    if (t.op == OpKind::Assign && t.dst == p.entry) loops_back = true;
  EXPECT_TRUE(loops_back);
  // the break's Noop edge leaves the loop to the pc of the final assign
  bool break_found = false;
  for (const Transition& t : p.trans)
    if (t.op == OpKind::Noop && t.label == "break") break_found = true;
  EXPECT_TRUE(break_found);
}

TEST(Compile, AtomicMarksInteriorPcsOnly) {
  SystemSpec sys = base_sys();
  ProcBuilder b(sys, "P");
  const LVar x = b.local("x");
  b.finish(seq(assign(x, b.k(0)),
               atomic(seq(assign(x, b.k(1)), assign(x, b.k(2)),
                          assign(x, b.k(3)))),
               assign(x, b.k(4))));
  sys.spawn("p", 0, {});
  const auto procs = compile(sys);
  const CompiledProc& p = procs[0];
  int atomic_pcs = 0;
  for (int pc = 0; pc < p.n_pcs; ++pc)
    if (p.atomic_at[static_cast<std::size_t>(pc)]) ++atomic_pcs;
  // interior control points of the 3-statement atomic block: after stmt 1
  // and after stmt 2 (entry and exit are not atomic)
  EXPECT_EQ(atomic_pcs, 2);
}

TEST(Compile, EndLabelMarksLoopHead) {
  SystemSpec sys = base_sys();
  ProcBuilder b(sys, "P");
  const LVar x = b.local("x");
  b.finish(seq(end_label(), do_(alt(seq(guard(b.l(x) == b.k(0)))))));
  sys.spawn("p", 0, {});
  const auto procs = compile(sys);
  EXPECT_TRUE(procs[0].valid_end[static_cast<std::size_t>(procs[0].entry)]);
}

TEST(Compile, LocalOnlyClassification) {
  SystemSpec sys = base_sys();
  ProcBuilder b(sys, "P");
  const LVar x = b.local("x");
  const GVar g{0};
  b.finish(seq(assign(x, b.l(x) + b.k(1)),       // local-only
               assign(g, b.k(1)),                // writes a global
               assign(x, b.g(g)),                // reads a global
               guard(b.l(x) == b.k(0)),          // local-only guard
               send(b.c(Chan{0}), {b.k(1)})));   // channel op
  sys.spawn("p", 0, {});
  const auto procs = compile(sys);
  const auto& tr = procs[0].trans;
  ASSERT_EQ(tr.size(), 5u);
  EXPECT_TRUE(tr[0].local_only);
  EXPECT_FALSE(tr[1].local_only);
  EXPECT_FALSE(tr[2].local_only);
  EXPECT_TRUE(tr[3].local_only);
  EXPECT_FALSE(tr[4].local_only);
}

TEST(Compile, ValidationCatchesArityMismatch) {
  SystemSpec sys = base_sys();  // channel "c" has arity 1
  ProcBuilder b(sys, "P");
  b.finish(seq(send(b.c(Chan{0}), {b.k(1), b.k(2)})));
  sys.spawn("p", 0, {});
  EXPECT_THROW(compile(sys), ModelError);
}

TEST(Compile, ValidationCatchesBreakOutsideLoop) {
  SystemSpec sys = base_sys();
  ProcBuilder b(sys, "P");
  b.finish(seq(break_()));
  sys.spawn("p", 0, {});
  EXPECT_THROW(compile(sys), ModelError);
}

TEST(Compile, ValidationCatchesBadSlots) {
  SystemSpec sys = base_sys();
  ProcBuilder b(sys, "P");
  Stmt s;
  s.kind = StmtKind::Assign;
  s.lhs = {LhsKind::Local, 99};
  s.expr = sys.exprs.konst(1);
  Seq body;
  body.push_back(std::make_unique<Stmt>(std::move(s)));
  b.finish(std::move(body));
  sys.spawn("p", 0, {});
  EXPECT_THROW(compile(sys), ModelError);
}

TEST(Compile, DescribeRendersOps) {
  SystemSpec sys = base_sys();
  ProcBuilder b(sys, "P");
  const LVar x = b.local("x");
  b.finish(seq(assign(x, b.k(1)),
               send(b.c(Chan{0}), {b.l(x)}),
               recv(b.c(Chan{0}), {bind(x)}),
               assert_(b.l(x) == b.k(1))));
  sys.spawn("p", 0, {});
  const auto procs = compile(sys);
  const CompiledProc& p = procs[0];
  EXPECT_EQ(describe(sys, p, p.trans[0]), "x = 1");
  EXPECT_EQ(describe(sys, p, p.trans[1]), "c!x");
  EXPECT_EQ(describe(sys, p, p.trans[2]), "c?x");
  EXPECT_EQ(describe(sys, p, p.trans[3]), "assert((x == 1))");
}

TEST(Compile, CompileProcMatchesFullCompile) {
  SystemSpec sys = base_sys();
  ProcBuilder b(sys, "P");
  const LVar x = b.local("x");
  b.finish(seq(assign(x, b.k(1)), assign(x, b.k(2))));
  sys.spawn("p", 0, {});
  const auto all = compile(sys);
  const CompiledProc one = compile_proc(sys, 0);
  EXPECT_EQ(one.trans.size(), all[0].trans.size());
  EXPECT_EQ(one.n_pcs, all[0].n_pcs);
  EXPECT_EQ(one.entry, all[0].entry);
}

}  // namespace
}  // namespace pnp::compile
