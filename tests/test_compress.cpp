// COLLAPSE compression + flat visited-store tests.
//
// Three layers: (1) unit tests for the KeyArena / FlatKeySet storage and
// the StateCompressor (round-trip exactness and injectivity over reachable
// AND adversarially random states -- injectivity is the property that lets
// the exact visited set key on compressed bytes); (2) concurrency: the
// lock-striped compressor must stay exact under parallel interning;
// (3) store equivalence: the rewritten engines must reproduce the
// copy-based engine's verdicts and stats on the paper's bridge models --
// bit-identical at thread count 1 (checked against an in-test replica of
// the historical frame-by-frame DFS) and count-identical at 2 and 8.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bridge/bridge.h"
#include "explore/explorer.h"
#include "explore/flat_store.h"
#include "explore/visited.h"
#include "kernel/compress.h"
#include "kernel/machine.h"
#include "pnp/generator.h"
#include "support/hash.h"

namespace pnp {
namespace {

using kernel::Machine;
using kernel::State;
using kernel::StateCompressor;

// -- model helpers -----------------------------------------------------------

struct BridgeModel {
  pnp::ModelGenerator gen;
  std::unique_ptr<Machine> m;
  expr::Ref invariant{expr::kNoExpr};
};

BridgeModel make_bridge(bool v2) {
  BridgeModel b;
  bridge::BridgeConfig cfg;
  cfg.cars_per_side = 1;
  cfg.batch_n = 1;
  if (v2) cfg.enter_queue_capacity = 1;
  Architecture arch = v2 ? bridge::make_v2(cfg) : bridge::make_v1(cfg);
  b.m = std::make_unique<Machine>(
      b.gen.generate(arch, {.optimize_connectors = !v2}));
  b.invariant = bridge::safety_invariant(b.gen).ref;
  return b;
}

/// Collects up to `limit` distinct reachable states, breadth-first.
std::vector<State> reachable_states(const Machine& m, std::size_t limit) {
  std::vector<State> out;
  std::unordered_set<std::string> seen;
  std::vector<kernel::Succ> succs;
  out.push_back(m.initial());
  seen.insert(kernel::encode_key(out.back()));
  for (std::size_t head = 0; head < out.size() && out.size() < limit; ++head) {
    succs.clear();
    m.successors(out[head], succs);
    for (kernel::Succ& sc : succs) {
      if (out.size() >= limit) break;
      if (seen.insert(kernel::encode_key(sc.first)).second)
        out.push_back(std::move(sc.first));
    }
  }
  return out;
}

void expect_round_trip(StateCompressor& c, const std::vector<State>& states) {
  std::map<std::vector<std::uint8_t>, std::string> by_key;
  std::vector<std::uint8_t> key;
  for (const State& s : states) {
    c.compress(s, key);
    const State back = c.decompress(key);
    EXPECT_EQ(back.mem, s.mem);
    EXPECT_EQ(back.atomic_pid, s.atomic_pid);
    // injectivity: one compressed key never names two distinct states
    const std::string enc = kernel::encode_key(s);
    auto [it, fresh] = by_key.emplace(key, enc);
    if (!fresh) {
      EXPECT_EQ(it->second, enc);
    }
  }
}

// -- compressor --------------------------------------------------------------

TEST(Compress, RoundTripReachableStates) {
  const BridgeModel b = make_bridge(/*v2=*/false);
  const std::vector<State> states = reachable_states(*b.m, 5000);
  ASSERT_GT(states.size(), 1000u);
  StateCompressor c(b.m->layout());
  expect_round_trip(c, states);
  EXPECT_GT(c.n_regions(), 1);
  EXPECT_GT(c.components(), 0u);
  EXPECT_GT(c.approx_bytes(), 0u);
}

TEST(Compress, RoundTripRandomStates) {
  // Adversarial slot values (full Value range, including negatives and the
  // multi-byte encode_key escape range) and every atomic_pid, none of which
  // a reachable-state walk would cover.
  const BridgeModel b = make_bridge(/*v2=*/false);
  const kernel::Layout& lay = b.m->layout();
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<kernel::Value> val(
      std::numeric_limits<kernel::Value>::min(),
      std::numeric_limits<kernel::Value>::max());
  std::vector<State> states;
  for (int i = 0; i < 2000; ++i) {
    State s;
    s.mem.resize(static_cast<std::size_t>(lay.size()));
    for (kernel::Value& v : s.mem) v = val(rng);
    s.atomic_pid = static_cast<int>(rng() % 5) - 1;
    states.push_back(std::move(s));
  }
  StateCompressor c(lay);
  expect_round_trip(c, states);
}

namespace {

/// Checks, for every successor streamed out of the kernel, that
/// compress_delta() fed by the real undo log produces byte-identical keys to
/// a from-scratch compress() -- the property FlatRun's visited inserts rely
/// on. Also BFS-extends the frontier so deltas chain across generations.
struct DeltaCheckSink final : kernel::SuccSink {
  const Machine& m;
  StateCompressor& c;
  kernel::SuccScratch& scratch;
  const std::vector<std::uint32_t>& parent_ids;
  std::vector<std::pair<State, std::vector<std::uint32_t>>>& frontier;
  std::unordered_set<std::string>& seen;
  std::size_t& checked;

  std::vector<std::uint8_t> delta_key, full_key, dirty;
  std::vector<std::uint32_t> ids;

  DeltaCheckSink(const Machine& m, StateCompressor& c,
                 kernel::SuccScratch& scratch,
                 const std::vector<std::uint32_t>& parent_ids,
                 std::vector<std::pair<State, std::vector<std::uint32_t>>>& f,
                 std::unordered_set<std::string>& seen, std::size_t& checked)
      : m(m), c(c), scratch(scratch), parent_ids(parent_ids), frontier(f),
        seen(seen), checked(checked),
        dirty(static_cast<std::size_t>(c.n_regions())),
        ids(static_cast<std::size_t>(c.n_regions())) {}

  bool on_successor(const State& ns, const kernel::Step&) override {
    const std::vector<int>& reg = c.region_of_slot();
    std::fill(dirty.begin(), dirty.end(), std::uint8_t{0});
    for (const auto& [slot, old] : scratch.undo)
      dirty[static_cast<std::size_t>(reg[static_cast<std::size_t>(slot)])] = 1;
    c.compress_delta(ns, parent_ids.data(), dirty.data(), delta_key,
                     ids.data());
    c.compress(ns, full_key);
    EXPECT_EQ(delta_key, full_key);
    ++checked;
    if (frontier.size() < 4000 && seen.insert(kernel::encode_key(ns)).second)
      frontier.emplace_back(ns, ids);
    return true;
  }
};

}  // namespace

TEST(Compress, DeltaMatchesFullOnRealSuccessors) {
  const BridgeModel b = make_bridge(/*v2=*/false);
  const Machine& m = *b.m;
  StateCompressor c(m.layout());

  std::vector<std::pair<State, std::vector<std::uint32_t>>> frontier;
  std::unordered_set<std::string> seen;
  std::size_t checked = 0;

  std::vector<std::uint8_t> root_key;
  std::vector<std::uint32_t> root_ids(static_cast<std::size_t>(c.n_regions()));
  State root = m.initial();
  c.compress_full(root, root_key, root_ids.data());
  seen.insert(kernel::encode_key(root));
  frontier.emplace_back(std::move(root), std::move(root_ids));

  kernel::SuccScratch scratch;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    // Copy out: the sink may grow `frontier`, invalidating references.
    const State parent = frontier[head].first;
    const std::vector<std::uint32_t> parent_ids = frontier[head].second;
    DeltaCheckSink sink(m, c, scratch, parent_ids, frontier, seen, checked);
    m.visit_successors(parent, scratch, sink);
  }
  EXPECT_GT(checked, 5000u);
  EXPECT_GT(frontier.size(), 1000u);
}

TEST(Compress, ConcurrentInterningStaysExact) {
  const BridgeModel b = make_bridge(/*v2=*/false);
  const std::vector<State> states = reachable_states(*b.m, 2000);
  StateCompressor c(b.m->layout(), /*stripes=*/16);
  // 4 workers intern an interleaved mix of shared and private states.
  std::vector<std::vector<std::vector<std::uint8_t>>> keys(4);
  {
    std::vector<std::thread> ts;
    for (int w = 0; w < 4; ++w) {
      ts.emplace_back([&, w] {
        std::vector<std::uint8_t> key;
        for (std::size_t i = 0; i < states.size(); ++i) {
          if (i % 2 == 0 && static_cast<int>(i % 4) != w) continue;
          c.compress(states[i], key);
          keys[static_cast<std::size_t>(w)].push_back(key);
        }
      });
    }
    for (std::thread& t : ts) t.join();
  }
  // Every key decompresses to a state whose re-compression is identical,
  // and distinct states got distinct keys across all workers.
  std::set<std::vector<std::uint8_t>> distinct;
  std::vector<std::uint8_t> rekey;
  for (const auto& worker : keys)
    for (const auto& key : worker) {
      const State s = c.decompress(key);
      c.compress(s, rekey);
      EXPECT_EQ(rekey, key);
      distinct.insert(key);
    }
  EXPECT_EQ(distinct.size(), states.size());
}

// -- flat stores -------------------------------------------------------------

std::vector<std::uint8_t> random_key(std::mt19937_64& rng) {
  std::vector<std::uint8_t> key(rng() % 300);
  for (std::uint8_t& byte : key) byte = static_cast<std::uint8_t>(rng());
  return key;
}

TEST(FlatStore, KeyArenaRoundTripsAcrossSlabs) {
  explore::KeyArena arena;
  std::mt19937_64 rng(11);
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> recs;
  // ~3000 * ~150 B crosses the 256 KiB slab boundary several times.
  for (int i = 0; i < 3000; ++i) {
    std::vector<std::uint8_t> key = random_key(rng);
    recs.emplace_back(arena.append(key), std::move(key));
  }
  for (const auto& [off, key] : recs) {
    EXPECT_TRUE(arena.equals(off, key));
    const auto rec = arena.at(off);
    EXPECT_EQ(std::vector<std::uint8_t>(rec.begin(), rec.end()), key);
  }
  EXPECT_GE(arena.bytes(), std::uint64_t{1} << 18);
}

TEST(FlatStore, FlatKeySetMatchesReferenceSet) {
  explore::FlatKeySet set;  // expected=0: starts tiny, must grow many times
  std::set<std::vector<std::uint8_t>> ref;
  std::mt19937_64 rng(13);
  for (int i = 0; i < 50000; ++i) {
    // draw from a narrow space so duplicates actually occur
    std::vector<std::uint8_t> key((rng() % 6) + 1);
    for (std::uint8_t& byte : key) byte = static_cast<std::uint8_t>(rng() % 8);
    const bool fresh_ref = ref.insert(key).second;
    const bool fresh = set.insert(key, hash_bytes(key));
    EXPECT_EQ(fresh, fresh_ref);
  }
  EXPECT_EQ(set.size(), ref.size());
  EXPECT_GT(set.approx_bytes(), 0u);
}

TEST(FlatStore, ReserveDoesNotDisturbMembership) {
  explore::FlatKeySet set;
  std::mt19937_64 rng(17);
  std::vector<std::vector<std::uint8_t>> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(random_key(rng));
  for (const auto& k : keys) set.insert(k, hash_bytes(k));
  const std::uint64_t n = set.size();
  set.reserve(100000);
  for (const auto& k : keys) EXPECT_FALSE(set.insert(k, hash_bytes(k)));
  EXPECT_EQ(set.size(), n);
}

// -- store equivalence -------------------------------------------------------

/// In-test replica of the historical copy-based DFS engine (frame stack,
/// one successor at a time, full successor lists): the reference for
/// stored/matched/transitions, including under max_states truncation,
/// where the totals depend on the traversal order.
struct OracleStats {
  std::uint64_t stored = 0;
  std::uint64_t matched = 0;
  std::uint64_t transitions = 0;
};

OracleStats oracle_dfs(const Machine& m, std::uint64_t max_states) {
  OracleStats st;
  struct Frame {
    State state;
    std::vector<kernel::Succ> succs;
    std::size_t next = 0;
    bool generated = false;
  };
  std::unordered_set<std::string> visited;
  std::vector<Frame> stack;
  stack.push_back({m.initial(), {}, 0, false});
  visited.insert(kernel::encode_key(stack.back().state));
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (!f.generated) {
      f.generated = true;
      m.successors(f.state, f.succs);
      st.transitions += f.succs.size();
    }
    if (f.next >= f.succs.size()) {
      stack.pop_back();
      continue;
    }
    kernel::Succ& sc = f.succs[f.next++];
    if (!visited.insert(kernel::encode_key(sc.first)).second) {
      ++st.matched;
      continue;
    }
    if (visited.size() >= max_states) continue;  // stored, not expanded
    stack.push_back({std::move(sc.first), {}, 0, false});
  }
  st.stored = visited.size();
  return st;
}

explore::Result run_bridge(const BridgeModel& b, int threads, bool por,
                           bool bitstate, std::uint64_t max_states = 0) {
  explore::Options opt;
  opt.invariant = b.invariant;
  opt.invariant_name = "safety";
  opt.want_trace = false;
  opt.threads = threads;
  opt.por = por;
  opt.bitstate = bitstate;
  if (max_states > 0) opt.max_states = max_states;
  return explore::explore(*b.m, opt);
}

TEST(StoreEquivalence, Fig13FullSpaceAllThreadCounts) {
  const BridgeModel b = make_bridge(/*v2=*/false);
  const OracleStats oracle = oracle_dfs(*b.m, ~std::uint64_t{0});
  ASSERT_GT(oracle.stored, 10000u);

  const explore::Result seq = run_bridge(b, 1, false, false);
  EXPECT_TRUE(seq.ok());
  EXPECT_TRUE(seq.stats.complete);
  // thread count 1: bit-identical to the historical engine, all stats
  EXPECT_EQ(seq.stats.states_stored, oracle.stored);
  EXPECT_EQ(seq.stats.states_matched, oracle.matched);
  EXPECT_EQ(seq.stats.transitions, oracle.transitions);
  EXPECT_GT(seq.stats.store_bytes, 0u);

  for (const int t : {2, 8}) {
    const explore::Result r = run_bridge(b, t, false, false);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.stats.complete);
    EXPECT_EQ(r.stats.states_stored, oracle.stored) << "threads=" << t;
    EXPECT_EQ(r.stats.states_matched, oracle.matched) << "threads=" << t;
    EXPECT_EQ(r.stats.transitions, oracle.transitions) << "threads=" << t;
  }
}

TEST(StoreEquivalence, Fig13PartialOrderReduction) {
  const BridgeModel b = make_bridge(/*v2=*/false);
  // Sequential POR uses the cycle proviso, the parallel engine the
  // proviso-free choice, so the two reduced graphs differ; verdicts and
  // cross-thread parallel counts may not.
  const explore::Result seq = run_bridge(b, 1, true, false);
  EXPECT_TRUE(seq.ok());
  EXPECT_TRUE(seq.stats.complete);
  const explore::Result p2 = run_bridge(b, 2, true, false);
  const explore::Result p8 = run_bridge(b, 8, true, false);
  EXPECT_TRUE(p2.ok());
  EXPECT_TRUE(p8.ok());
  EXPECT_EQ(p2.stats.states_stored, p8.stats.states_stored);
  EXPECT_EQ(p2.stats.states_matched, p8.stats.states_matched);
  EXPECT_EQ(p2.stats.transitions, p8.stats.transitions);
}

TEST(StoreEquivalence, Fig13BitstateMatchesExact) {
  const BridgeModel b = make_bridge(/*v2=*/false);
  const explore::Result exact = run_bridge(b, 1, false, false);
  const explore::Result bits = run_bridge(b, 1, false, true);
  EXPECT_TRUE(bits.ok());
  // 28k states in a 2^24-byte double-bit filter: collision-free in
  // practice, so the stored count must match the exact engine's.
  EXPECT_EQ(bits.stats.states_stored, exact.stats.states_stored);
  EXPECT_FALSE(bits.stats.complete);
  EXPECT_EQ(bits.stats.truncation, explore::TruncationReason::BitstateApprox);
}

TEST(StoreEquivalence, Fig14BoundedSearchMatchesOracle) {
  // The v2 bridge's full interleaving space is ~20M states, so the oracle
  // equivalence runs under a max_states bound -- which makes the totals
  // traversal-order-dependent and therefore a sharper test of the streaming
  // engine's pass structure.
  const BridgeModel b = make_bridge(/*v2=*/true);
  const std::uint64_t bound = 150000;
  const OracleStats oracle = oracle_dfs(*b.m, bound);
  // fresh states found after the bound trips are still stored (just not
  // expanded), so the final count sits at or slightly above the bound
  EXPECT_GE(oracle.stored, bound);

  const explore::Result seq = run_bridge(b, 1, false, false, bound);
  EXPECT_TRUE(seq.ok());
  EXPECT_FALSE(seq.stats.complete);
  EXPECT_EQ(seq.stats.truncation, explore::TruncationReason::MaxStates);
  EXPECT_EQ(seq.stats.states_stored, oracle.stored);
  EXPECT_EQ(seq.stats.states_matched, oracle.matched);
  EXPECT_EQ(seq.stats.transitions, oracle.transitions);

  for (const int t : {2, 8}) {
    const explore::Result r = run_bridge(b, t, false, false, bound);
    EXPECT_TRUE(r.ok()) << "threads=" << t;
    EXPECT_FALSE(r.stats.complete) << "threads=" << t;
    EXPECT_GE(r.stats.states_stored, bound) << "threads=" << t;
  }
}

}  // namespace
}  // namespace pnp
