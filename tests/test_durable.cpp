// Durable exploration: mmap spill-to-disk, pnp.ckpt.v1 checkpoint/resume,
// and crash-safe run recovery.
//
// The load-bearing property throughout is resume equivalence: a run cut at
// an arbitrary point (state-count stride or interrupt) and resumed from its
// checkpoint must reach the same verdict and -- for complete exact runs --
// the same stored-state count as the uninterrupted search. Spill
// equivalence is the same claim for the disk-backed stores: a memory
// budget below the search's footprint must complete exactly via spill, not
// truncate into the bitstate rung.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bridge/bridge.h"
#include "explore/checkpoint.h"
#include "explore/explorer.h"
#include "explore/flat_store.h"
#include "obs/obs.h"
#include "pnp/session.h"
#include "reduce/cache.h"
#include "support/hash.h"
#include "support/panic.h"
#include "support/spill.h"

namespace pnp {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory under the system temp root.
class TempDir {
 public:
  TempDir() {
    const ::testing::TestInfo* ti =
        ::testing::UnitTest::GetInstance()->current_test_info();
    // Process-unique so two build trees running this suite concurrently
    // (e.g. plain + sanitizer) never share scratch state.
    path_ = fs::temp_directory_path() /
            ("pnp_durable_" + std::to_string(::getpid()) + "_" +
             std::string(ti->test_suite_name()) + "_" +
             std::string(ti->name()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

constexpr GenOptions kOpt{.optimize_connectors = true};

/// The fig. 13 bridge (fixed v1 by default): ~28k states, completes in
/// ~0.1 s -- big enough for meaningful cuts, small enough for a stride
/// sweep. `buggy` builds the paper's initial async-enter design, whose
/// safety violation sits ~600 states into the space.
struct BridgeFixture {
  ModelGenerator gen;
  std::optional<kernel::Machine> m;
  expr::Ex invariant;

  explicit BridgeFixture(bool buggy = false) {
    bridge::BridgeConfig cfg;
    cfg.buggy_async_enter = buggy;
    Architecture arch = bridge::make_v1(cfg);
    m = gen.generate(arch, kOpt);
    invariant = bridge::safety_invariant(gen);
  }

  explore::Options opts(int threads) const {
    explore::Options o;
    o.invariant = invariant.ref;
    o.invariant_name = "one direction at a time";
    o.threads = threads;
    return o;
  }
};

// -- spill-to-disk ------------------------------------------------------------

TEST(Spill, PoolAllocatesDiskBackedBlocks) {
  TempDir dir;
  support::SpillPool pool(dir.str());
  auto* a = static_cast<std::uint8_t*>(pool.alloc(1 << 16));
  auto* b = static_cast<std::uint8_t*>(pool.alloc(1 << 16));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  a[0] = 0x5a;
  a[(1 << 16) - 1] = 0xa5;
  b[123] = 7;
  EXPECT_EQ(a[0], 0x5a);
  EXPECT_EQ(a[(1 << 16) - 1], 0xa5);
  EXPECT_EQ(b[123], 7);
  EXPECT_EQ(pool.blocks(), 2u);
  EXPECT_GE(pool.disk_bytes(), std::uint64_t{2} << 16);
  pool.free(a);
  EXPECT_EQ(pool.blocks(), 1u);
}

TEST(Spill, PoolRejectsUnusableDirectory) {
  TempDir dir;
  // a plain file where the spill directory should go
  const std::string f = (dir.path() / "not_a_dir").string();
  std::ofstream(f) << "x";
  EXPECT_THROW(support::SpillPool pool(f), ModelError);
}

TEST(Spill, FlatKeySetKeepsAllKeysAcrossTheSpillBoundary) {
  TempDir dir;
  support::SpillPool pool(dir.str());
  explore::FlatKeySet set;
  auto key = [](std::uint32_t i) {
    std::vector<std::uint8_t> k(37);  // odd size: records straddle slabs
    for (std::size_t j = 0; j < k.size(); ++j)
      k[j] = static_cast<std::uint8_t>((i >> (8 * (j % 4))) ^ j);
    return k;
  };
  constexpr std::uint32_t kHalf = 20'000;
  for (std::uint32_t i = 0; i < kHalf; ++i) {
    const auto k = key(i);
    ASSERT_TRUE(set.insert(k, hash_bytes(k)));
  }
  set.attach_spill(&pool);  // everything after this lands on disk
  for (std::uint32_t i = kHalf; i < 2 * kHalf; ++i) {
    const auto k = key(i);
    ASSERT_TRUE(set.insert(k, hash_bytes(k)));
  }
  EXPECT_TRUE(set.spilling());
  EXPECT_GT(set.spill_bytes(), 0u);
  // every key -- pre- and post-spill -- is still present and readable
  for (std::uint32_t i = 0; i < 2 * kHalf; ++i) {
    const auto k = key(i);
    EXPECT_FALSE(set.insert(k, hash_bytes(k)));
  }
  std::uint64_t enumerated = 0;
  set.for_each_key([&](std::span<const std::uint8_t> k) {
    EXPECT_EQ(k.size(), 37u);
    ++enumerated;
  });
  EXPECT_EQ(enumerated, set.size());
  EXPECT_EQ(set.size(), 2 * kHalf);
}

/// A memory budget far below the search footprint must complete EXACTLY via
/// spill: same state count, no truncation, no bitstate degradation.
TEST(Spill, ExplorationBelowBudgetCompletesExactly) {
  BridgeFixture fx;
  const explore::Result ref = explore::explore(*fx.m, fx.opts(1));
  ASSERT_TRUE(ref.stats.complete);
  ASSERT_GT(ref.stats.store_bytes, std::uint64_t{1} << 20);

  for (const int threads : {1, 2}) {
    TempDir dir;
    explore::Options o = fx.opts(threads);
    // well below the ~3 MB footprint, and small enough that the stores
    // spill while most of their slabs are still unallocated
    o.memory_budget_bytes = std::uint64_t{1} << 18;
    o.spill_dir = dir.str();
    const explore::Result r = explore::explore(*fx.m, o);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.stats.complete) << "threads=" << threads;
    EXPECT_EQ(r.stats.truncation, explore::TruncationReason::None);
    EXPECT_TRUE(r.stats.spilled);
    // spill_bytes counts whole post-spill slabs; the parallel store's
    // per-stripe arenas may legitimately never need a second slab on a
    // model this small, so the byte assertion is sequential-only
    if (threads == 1) EXPECT_GT(r.stats.spill_bytes, 0u);
    EXPECT_EQ(r.stats.states_stored, ref.stats.states_stored)
        << "threads=" << threads;
  }
}

/// Without a spill dir the same budget truncates -- the historical rung.
TEST(Spill, SameBudgetWithoutSpillDirStillTruncates) {
  BridgeFixture fx;
  explore::Options o = fx.opts(1);
  o.memory_budget_bytes = std::uint64_t{1} << 20;
  const explore::Result r = explore::explore(*fx.m, o);
  EXPECT_FALSE(r.stats.complete);
  EXPECT_EQ(r.stats.truncation, explore::TruncationReason::MemoryBudget);
  EXPECT_FALSE(r.stats.spilled);
}

/// The ladder names a spilled exact rung "exact-spill" and does not
/// degrade it to bitstate: the verdict is exact.
TEST(Spill, VerifierReportsExactSpillStage) {
  BridgeFixture fx;
  TempDir dir;
  VerifyOptions vopt;
  vopt.memory_budget_bytes = std::uint64_t{1} << 20;
  vopt.spill_dir = dir.str();
  const SafetyOutcome out =
      check_invariant(*fx.m, fx.invariant, "one direction at a time", vopt);
  EXPECT_TRUE(out.passed()) << out.report();
  ASSERT_EQ(out.stages.size(), 1u);
  EXPECT_EQ(out.stages[0].name, "exact-spill");
  EXPECT_TRUE(out.result.stats.complete);
  EXPECT_TRUE(out.result.stats.spilled);
}

// -- checkpoint format --------------------------------------------------------

explore::Checkpoint sample_checkpoint(const std::string& path) {
  explore::CheckpointMeta meta;
  meta.config_digest = "cfg-digest-1";
  meta.state_size = 3;
  meta.states_matched = 41;
  meta.transitions = 99;
  meta.seq = 2;
  meta.counters = {7, 8, 9};
  std::vector<kernel::State> visited;
  for (int i = 0; i < 5; ++i) {
    kernel::State s;
    s.mem = {i, i * 10, -i};
    s.atomic_pid = (i == 3) ? 1 : -1;
    visited.push_back(std::move(s));
  }
  kernel::State f;
  f.mem = {5, 50, -5};
  explore::write_checkpoint(
      path, meta,
      [&](const explore::StateSink& sink) {
        for (const kernel::State& s : visited) sink(s, 0);
      },
      [&](const explore::StateSink& sink) { sink(f, 12); });
  return explore::read_checkpoint(path);
}

TEST(Checkpoint, RoundTripPreservesEverySection) {
  TempDir dir;
  const std::string path = (dir.path() / "rt.pnp.ckpt").string();
  const explore::Checkpoint c = sample_checkpoint(path);
  EXPECT_EQ(c.meta.config_digest, "cfg-digest-1");
  EXPECT_EQ(c.meta.state_size, 3u);
  EXPECT_EQ(c.meta.states_matched, 41u);
  EXPECT_EQ(c.meta.transitions, 99u);
  EXPECT_EQ(c.meta.seq, 2u);
  EXPECT_EQ(c.meta.counters, (std::vector<std::uint64_t>{7, 8, 9}));
  ASSERT_EQ(c.visited.size(), 5u);
  EXPECT_EQ(c.visited[2].mem, (std::vector<expr::Value>{2, 20, -2}));
  EXPECT_EQ(c.visited[3].atomic_pid, 1);
  EXPECT_EQ(c.visited[4].atomic_pid, -1);
  ASSERT_EQ(c.frontier.size(), 1u);
  EXPECT_EQ(c.frontier[0].depth, 12u);
  EXPECT_EQ(c.frontier[0].state.mem, (std::vector<expr::Value>{5, 50, -5}));
  // atomic commit: no temp file left behind
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(Checkpoint, CorruptedAndTruncatedFilesAreRejected) {
  TempDir dir;
  const std::string path = (dir.path() / "c.pnp.ckpt").string();
  sample_checkpoint(path);
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  auto rewrite = [&](const std::string& b) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(b.data(), static_cast<std::streamsize>(b.size()));
  };
  // flipped payload byte: section checksum mismatch
  {
    std::string bad = bytes;
    bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0xff);
    rewrite(bad);
    EXPECT_THROW(explore::read_checkpoint(path), ModelError);
  }
  // torn write: file cut mid-section
  rewrite(bytes.substr(0, bytes.size() / 2));
  EXPECT_THROW(explore::read_checkpoint(path), ModelError);
  // not a checkpoint at all
  rewrite("definitely not a pnp.ckpt.v1 file");
  EXPECT_THROW(explore::read_checkpoint(path), ModelError);
  // trailing garbage after the END section
  rewrite(bytes + "x");
  EXPECT_THROW(explore::read_checkpoint(path), ModelError);
  // missing entirely
  EXPECT_THROW(explore::read_checkpoint(path + ".nope"), ModelError);
  // intact bytes still parse (the helpers above did not mask a real break)
  rewrite(bytes);
  EXPECT_NO_THROW(explore::read_checkpoint(path));
}

// -- checkpoint/resume equivalence --------------------------------------------

/// Cuts the search at `stride` stored states, then repeatedly resumes from
/// the committed checkpoint with a geometrically growing cap (so multi-hop
/// chains stay short) until the search completes or finds a violation.
explore::Result cut_and_resume(const kernel::Machine& m,
                               const explore::Options& base,
                               const std::string& ckpt_path,
                               std::uint64_t stride) {
  explore::Options opt = base;
  opt.checkpoint_path = ckpt_path;
  opt.config_digest = "test-digest";
  explore::Options cut = opt;
  cut.max_states = stride;
  explore::Result r = explore::explore(m, cut);
  int hops = 0;
  std::optional<explore::Checkpoint> c;
  while (!r.stats.complete && !r.violation.has_value()) {
    if (++hops > 64) {
      ADD_FAILURE() << "resume chain does not converge";
      break;
    }
    c = explore::read_checkpoint(ckpt_path);
    EXPECT_EQ(c->meta.config_digest, "test-digest");
    explore::Options ro = opt;
    ro.max_states = r.stats.states_stored * 2 + 16;
    ro.resume_from = &*c;
    r = explore::explore(m, ro);
    EXPECT_TRUE(r.stats.resumed);
  }
  return r;
}

TEST(Resume, Fig13EquivalentAtEveryThreadCountAndStride) {
  BridgeFixture fx;
  for (const int threads : {1, 2, 8}) {
    const explore::Result ref = explore::explore(*fx.m, fx.opts(threads));
    ASSERT_TRUE(ref.stats.complete);
    ASSERT_TRUE(ref.ok());
    // fixed pseudo-random strides: 1 cuts at the root, the rest land
    // mid-wave at assorted depths
    for (const std::uint64_t stride :
         {std::uint64_t{1}, std::uint64_t{97}, std::uint64_t{1871},
          std::uint64_t{9043}}) {
      TempDir dir;
      const std::string path = (dir.path() / "fig13.pnp.ckpt").string();
      const explore::Result r =
          cut_and_resume(*fx.m, fx.opts(threads), path, stride);
      EXPECT_TRUE(r.ok());
      EXPECT_TRUE(r.stats.complete)
          << "threads=" << threads << " stride=" << stride;
      EXPECT_EQ(r.stats.states_stored, ref.stats.states_stored)
          << "threads=" << threads << " stride=" << stride;
    }
  }
}

TEST(Resume, Fig13BfsEquivalent) {
  BridgeFixture fx;
  explore::Options base = fx.opts(1);
  base.bfs = true;
  const explore::Result ref = explore::explore(*fx.m, base);
  ASSERT_TRUE(ref.stats.complete);
  for (const std::uint64_t stride : {std::uint64_t{113}, std::uint64_t{4099}}) {
    TempDir dir;
    const std::string path = (dir.path() / "fig13-bfs.pnp.ckpt").string();
    const explore::Result r = cut_and_resume(*fx.m, base, path, stride);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.stats.complete) << "stride=" << stride;
    EXPECT_EQ(r.stats.states_stored, ref.stats.states_stored)
        << "stride=" << stride;
  }
}

/// A violation reachable only past the cut must still be found after
/// resume: the checkpointed frontier covers every unexpanded state.
TEST(Resume, ViolationFoundAfterResume) {
  BridgeFixture fx(/*buggy=*/true);
  for (const int threads : {1, 2}) {
    const explore::Result ref = explore::explore(*fx.m, fx.opts(threads));
    ASSERT_TRUE(ref.violation.has_value());
    TempDir dir;
    const std::string path = (dir.path() / "buggy.pnp.ckpt").string();
    const explore::Result r =
        cut_and_resume(*fx.m, fx.opts(threads), path, 50);
    ASSERT_TRUE(r.violation.has_value()) << "threads=" << threads;
    EXPECT_EQ(r.violation->kind, ref.violation->kind);
  }
}

/// Fig. 14 (v2) is beyond exhaustive search at test time, so this is a
/// bounded smoke: cut at 20k stored states, resume, and require the
/// resumed search to verifiably continue past the cut without a verdict
/// flip. (Full-space durability soaks run via scripts/soak_resume.sh.)
TEST(Resume, Fig14BoundedSmoke) {
  bridge::BridgeConfig cfg;
  cfg.enter_queue_capacity = 1;
  Architecture arch = bridge::make_v2(cfg);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch, kOpt);
  const expr::Ex inv = bridge::safety_invariant(gen);
  TempDir dir;
  const std::string path = (dir.path() / "fig14.pnp.ckpt").string();
  explore::Options o;
  o.invariant = inv.ref;
  o.invariant_name = "one direction at a time";
  o.checkpoint_path = path;
  o.config_digest = "v2";
  o.max_states = 20'000;
  const explore::Result cut = explore::explore(m, o);
  ASSERT_TRUE(cut.ok());
  ASSERT_FALSE(cut.stats.complete);
  const explore::Checkpoint c = explore::read_checkpoint(path);
  explore::Options ro = o;
  ro.max_states = 60'000;
  ro.resume_from = &c;
  const explore::Result r = explore::explore(m, ro);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.stats.resumed);
  EXPECT_GT(r.stats.states_stored, cut.stats.states_stored);
}

TEST(Resume, PeriodicStrideWritesCheckpoints) {
  BridgeFixture fx;
  TempDir dir;
  const std::string path = (dir.path() / "periodic.pnp.ckpt").string();
  explore::Options o = fx.opts(1);
  o.checkpoint_path = path;
  o.config_digest = "d";
  o.checkpoint_every = 5'000;
  const explore::Result r = explore::explore(*fx.m, o);
  ASSERT_TRUE(r.stats.complete);
  // ~28k states / 5k stride = 5 periodic + 1 final
  EXPECT_GE(r.stats.checkpoints_written, 5u);
  // the final snapshot of a complete run has an empty frontier: resuming
  // it returns immediately with the full state count
  const explore::Checkpoint c = explore::read_checkpoint(path);
  EXPECT_TRUE(c.frontier.empty());
  EXPECT_EQ(c.visited.size(), r.stats.states_stored);
}

TEST(Resume, StateSizeMismatchIsRejected) {
  BridgeFixture fx;
  TempDir dir;
  const std::string path = (dir.path() / "alien.pnp.ckpt").string();
  const explore::Checkpoint c = sample_checkpoint(path);  // state_size 3
  explore::Options o = fx.opts(1);
  o.checkpoint_path = path;
  o.resume_from = &c;
  EXPECT_THROW(explore::explore(*fx.m, o), ModelError);
}

// -- verifier / Session integration -------------------------------------------

/// An interrupt stops the search almost immediately (final checkpoint
/// written, no bitstate degradation); a resume with the same config then
/// finishes the job with the uninterrupted state count.
TEST(Resume, VerifierInterruptThenResumeMatchesReference) {
  BridgeFixture fx;
  const SafetyOutcome ref =
      check_invariant(*fx.m, fx.invariant, "bridge safety");
  ASSERT_TRUE(ref.passed());

  TempDir dir;
  VerifyOptions vopt;
  vopt.checkpoint_dir = dir.str();
  std::atomic<bool> stop{true};
  vopt.interrupt = &stop;
  const SafetyOutcome cut =
      check_invariant(*fx.m, fx.invariant, "bridge safety", vopt);
  ASSERT_EQ(cut.stages.size(), 1u);  // interrupted: the ladder must NOT fire
  EXPECT_EQ(cut.result.stats.truncation,
            explore::TruncationReason::Interrupted);
  EXPECT_GT(cut.result.stats.checkpoints_written, 0u);

  VerifyOptions ropt;
  ropt.checkpoint_dir = dir.str();
  ropt.resume = true;
  const SafetyOutcome res =
      check_invariant(*fx.m, fx.invariant, "bridge safety", ropt);
  EXPECT_TRUE(res.passed());
  EXPECT_TRUE(res.result.stats.complete);
  EXPECT_TRUE(res.result.stats.resumed);
  EXPECT_EQ(res.result.stats.states_stored, ref.result.stats.states_stored);
}

TEST(Resume, VerifierRejectsConfigDigestMismatch) {
  BridgeFixture fx;
  TempDir dir;
  VerifyOptions vopt;
  vopt.checkpoint_dir = dir.str();
  ASSERT_TRUE(
      check_invariant(*fx.m, fx.invariant, "bridge safety", vopt).passed());

  VerifyOptions changed;
  changed.checkpoint_dir = dir.str();
  changed.resume = true;
  changed.max_states = 12'345;  // different config, same checkpoint path
  EXPECT_THROW(check_invariant(*fx.m, fx.invariant, "bridge safety", changed),
               ModelError);

  // unchanged config: the resume is accepted (and instant -- the final
  // snapshot of a complete run has an empty frontier)
  VerifyOptions same;
  same.checkpoint_dir = dir.str();
  same.resume = true;
  const SafetyOutcome res =
      check_invariant(*fx.m, fx.invariant, "bridge safety", same);
  EXPECT_TRUE(res.passed());
  EXPECT_TRUE(res.result.stats.resumed);
}

TEST(Resume, SessionResumeRequiresCheckpointDirAndFlowsToLedger) {
  BridgeFixture fx;
  TempDir dir;
  auto no_parse = [](const std::string&) -> expr::Ref {
    return expr::kNoExpr;
  };
  {
    RunConfig bare_cfg;
    bare_cfg.heartbeat = false;
    Session bare(bare_cfg);
    EXPECT_THROW(bare.resume_machine(*fx.m, "fig13", no_parse), ModelError);
  }

  RunConfig cfg;
  cfg.heartbeat = false;
  cfg.checkpoint_dir = (dir.path() / "ckpt").string();
  cfg.ledger_dir = (dir.path() / "ledger").string();
  Session session(cfg);
  const RunReport first = session.verify_machine(*fx.m, "fig13", no_parse);
  EXPECT_TRUE(first.passed);
  const RunReport again = session.resume_machine(*fx.m, "fig13", no_parse);
  EXPECT_TRUE(again.passed);

  // both runs landed in the ledger; the resumed one records the Resumed
  // incident (schema-validated lines)
  std::ifstream in(session.ledger_path());
  ASSERT_TRUE(static_cast<bool>(in));
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& l : lines) {
    std::string err;
    EXPECT_TRUE(obs::validate_ledger_record(l, &err)) << err;
  }
  EXPECT_NE(lines[1].find("\"resumed\""), std::string::npos);
}

TEST(Resume, InterruptedRunIsStampedInTheLedger) {
  BridgeFixture fx;
  TempDir dir;
  auto no_parse = [](const std::string&) -> expr::Ref {
    return expr::kNoExpr;
  };
  std::atomic<bool> stop{true};  // already raised: cut at the first check
  RunConfig cfg;
  cfg.heartbeat = false;
  cfg.interrupt = &stop;
  cfg.checkpoint_dir = (dir.path() / "ckpt").string();
  cfg.ledger_dir = (dir.path() / "ledger").string();
  Session session(cfg);
  const RunReport rep = session.verify_machine(*fx.m, "fig13", no_parse);
  EXPECT_TRUE(rep.passed);  // partial verdict: no violation in the cut

  std::ifstream in(session.ledger_path());
  ASSERT_TRUE(static_cast<bool>(in));
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  std::string err;
  EXPECT_TRUE(obs::validate_ledger_record(line, &err)) << err;
  EXPECT_NE(line.find("\"interrupted\":true"), std::string::npos);
}

// -- crash-safe ledger --------------------------------------------------------

TEST(Ledger, TornFinalLineIsRecoveredOnReopen) {
  TempDir dir;
  const std::string path = (dir.path() / "ledger.jsonl").string();
  const std::string good = "{\"schema\": \"pnp.run.v1\", \"fake\": 1}\n";
  {
    std::ofstream out(path, std::ios::binary);
    out << good << "{\"schema\": \"pnp.run.v1\", \"torn";  // no newline
  }
  obs::LedgerSink sink(dir.str());
  EXPECT_TRUE(sink.recovered_torn_line());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, good);  // intact record untouched, torn tail gone
}

TEST(Ledger, CleanFileIsNotFlaggedAsTorn) {
  TempDir dir;
  {
    std::ofstream out((dir.path() / "ledger.jsonl").string(),
                      std::ios::binary);
    out << "{\"schema\": \"pnp.run.v1\", \"fake\": 1}\n";
  }
  obs::LedgerSink sink(dir.str());
  EXPECT_FALSE(sink.recovered_torn_line());
  obs::LedgerSink fresh_dir_sink(
      (dir.path() / "empty").string());  // no file at all
  EXPECT_FALSE(fresh_dir_sink.recovered_torn_line());
}

// -- verdict-cache degradation ------------------------------------------------

TEST(Cache, FlushRetriesThenDegradesToUncached) {
  TempDir dir;
  reduce::VerificationCache cache(dir.str());
  reduce::ObligationKey key;
  key.kind = "safety";
  key.label = "x";
  key.slice_hash = 1;
  cache.record(key, {"", "safety", "x", true, "exact", 10, 0.1});
  ASSERT_TRUE(cache.flush());
  EXPECT_FALSE(cache.persist_failed());

  // force every attempt to fail: a NON-EMPTY directory squats on the temp
  // path (the retry loop's cleanup removes an empty one and recovers)
  fs::create_directories(cache.path() + ".tmp/squatter");
  cache.record(key, {"", "safety", "x", false, "exact", 11, 0.1});
  EXPECT_FALSE(cache.flush());
  EXPECT_TRUE(cache.persist_failed());
  EXPECT_FALSE(cache.flush());  // degraded: later flushes are skipped

  // in-memory entries still serve lookups after degradation
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_FALSE(hit->passed);

  // the previously persisted file was never clobbered by the failed flush
  fs::remove_all(cache.path() + ".tmp");
  reduce::VerificationCache reread(dir.str());
  const auto old = reread.lookup(key);
  ASSERT_TRUE(old.has_value());
  EXPECT_TRUE(old->passed);
}

}  // namespace
}  // namespace pnp
