// Exploration-engine tests beyond the kernel basics: POR soundness
// (property-parameterized equivalence against full search), bitstate mode,
// BFS/DFS agreement, and stats plausibility.
#include <gtest/gtest.h>

#include "explore/explorer.h"
#include "kernel/machine.h"
#include "model/builder.h"

namespace pnp::explore {
namespace {

using namespace model;

/// A family of small systems indexed by a scenario id; each mixes local
/// computation (POR fodder) with channel communication and a safety
/// property that either holds or fails depending on the scenario.
struct Scenario {
  std::unique_ptr<SystemSpec> sys;
  expr::Ref invariant{expr::kNoExpr};
  bool expect_violation{false};

  kernel::Machine machine() const { return kernel::Machine(*sys); }
};

Scenario make_scenario(int id) {
  Scenario sc;
  sc.sys = std::make_unique<SystemSpec>();
  SystemSpec& sys = *sc.sys;
  const int ch = sys.add_channel("c", 2, 1);
  const int total = sys.add_global("total");

  const int workers = 2 + (id % 2);  // 2 or 3 producers
  const int per = 2;
  for (int w = 0; w < workers; ++w) {
    ProcBuilder p(sys, "W" + std::to_string(w));
    const LVar i = p.local("i");
    const LVar scratch = p.local("s");
    p.finish(seq(do_(
        alt(seq(guard(p.l(i) < p.k(per)),
                // local busywork: POR can commute these
                assign(scratch, p.l(i) * p.k(3)),
                assign(scratch, p.l(scratch) + p.k(1)),
                send(p.c(Chan{ch}), {p.k(1)}),
                assign(i, p.l(i) + p.k(1)))),
        alt(seq(guard(p.l(i) == p.k(per)), break_())))));
    sys.spawn("w" + std::to_string(w), static_cast<int>(w), {});
  }
  ProcBuilder q(sys, "Collector");
  const LVar v = q.local("v");
  const LVar n = q.local("n");
  const int want = workers * per;
  q.finish(seq(do_(
      alt(seq(guard(q.l(n) < q.k(want)), recv(q.c(Chan{ch}), {bind(v)}),
              assign(GVar{total}, q.g(GVar{total}) + q.l(v)),
              assign(n, q.l(n) + q.k(1)))),
      alt(seq(guard(q.l(n) == q.k(want)), break_())))));
  sys.spawn("collector", static_cast<int>(workers), {});

  // invariant: total never exceeds the number of sent messages; scenario
  // ids >= 2 use a deliberately-too-tight bound to force a violation.
  const expr::Ref bound =
      sys.exprs.konst(id >= 2 ? want - 1 : want);
  sc.invariant = sys.exprs.binary(expr::Op::Le, sys.exprs.global(total), bound);
  sc.expect_violation = id >= 2;
  return sc;
}

class PorEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(PorEquivalence, PorPreservesVerdictAndNeverGrowsStateSpace) {
  const Scenario sc = make_scenario(GetParam());
  const kernel::Machine m = sc.machine();

  Options full;
  full.invariant = sc.invariant;
  Options por = full;
  por.por = true;

  const Result r_full = explore(m, full);
  const Result r_por = explore(m, por);

  EXPECT_EQ(r_full.violation.has_value(), sc.expect_violation);
  EXPECT_EQ(r_full.violation.has_value(), r_por.violation.has_value());
  if (r_full.violation && r_por.violation) {
    EXPECT_EQ(r_full.violation->kind, r_por.violation->kind);
  }
  EXPECT_LE(r_por.stats.states_stored, r_full.stats.states_stored);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, PorEquivalence, ::testing::Range(0, 4));

TEST(Explore, PorActuallyReducesOnLocalHeavyModel) {
  const Scenario sc = make_scenario(1);
  const kernel::Machine m = sc.machine();
  Options full;
  Options por;
  por.por = true;
  const Result r_full = explore(m, full);
  const Result r_por = explore(m, por);
  EXPECT_LT(r_por.stats.states_stored, r_full.stats.states_stored);
}

TEST(Explore, BitstateVisitsSameOrderOfMagnitude) {
  const Scenario sc = make_scenario(0);
  const kernel::Machine m = sc.machine();
  Options exact;
  const Result r_exact = explore(m, exact);

  Options bs;
  bs.bitstate = true;
  bs.bitstate_bytes = 1u << 22;
  const Result r_bs = explore(m, bs);
  EXPECT_FALSE(r_bs.stats.complete);  // bitstate is approximate by contract
  // with a roomy filter nearly all states are distinguished
  EXPECT_GE(r_bs.stats.states_stored, r_exact.stats.states_stored * 9 / 10);
  EXPECT_LE(r_bs.stats.states_stored, r_exact.stats.states_stored);
}

TEST(Explore, BfsAndDfsAgreeOnVerdict) {
  for (int id = 0; id < 4; ++id) {
    const Scenario sc = make_scenario(id);
    const kernel::Machine m = sc.machine();
    Options dfs;
    dfs.invariant = sc.invariant;
    Options bfs = dfs;
    bfs.bfs = true;
    const Result r_dfs = explore(m, dfs);
    const Result r_bfs = explore(m, bfs);
    EXPECT_EQ(r_dfs.violation.has_value(), r_bfs.violation.has_value())
        << "scenario " << id;
    if (r_dfs.violation && r_bfs.violation) {
      // BFS counterexamples are shortest; DFS ones are at least as long
      EXPECT_LE(r_bfs.violation->trace.size(), r_dfs.violation->trace.size());
    }
    // both enumerate the same reachable set when no violation interrupts
    if (!r_dfs.violation) {
      EXPECT_EQ(r_dfs.stats.states_stored, r_bfs.stats.states_stored);
    }
  }
}

TEST(Explore, WantTraceFalseOmitsTraceButKeepsVerdict) {
  const Scenario sc = make_scenario(2);
  const kernel::Machine m = sc.machine();
  Options opt;
  opt.invariant = sc.invariant;
  opt.want_trace = false;
  const Result r = explore(m, opt);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_TRUE(r.violation->trace.empty());
}

TEST(Explore, StatsArePlausible) {
  const Scenario sc = make_scenario(0);
  const kernel::Machine m = sc.machine();
  const Result r = explore(m, {});
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.stats.states_stored, 10u);
  EXPECT_GE(r.stats.transitions, r.stats.states_stored - 1);
  EXPECT_GT(r.stats.max_depth_reached, 2);
  EXPECT_TRUE(r.stats.complete);
  EXPECT_GE(r.stats.seconds, 0.0);
}

}  // namespace
}  // namespace pnp::explore
