// Unit tests for the expression layer: interning, evaluation, shared-state
// classification, and printing.
#include <gtest/gtest.h>

#include "expr/expr.h"
#include "support/panic.h"

namespace pnp::expr {
namespace {

class FakeChans : public ChannelView {
 public:
  int chan_len(int chan) const override { return chan == 0 ? 2 : 0; }
  int chan_capacity(int chan) const override { return chan == 0 ? 3 : 1; }
};

class ExprTest : public ::testing::Test {
 protected:
  Value eval(Ref r) {
    FakeChans chans;
    EvalEnv env{globals_, locals_, params_, &chans, 7};
    return pool_.eval(r, env);
  }
  Ex g(int slot) { return wrap(pool_, pool_.global(slot)); }
  Ex l(int slot) { return wrap(pool_, pool_.local(slot)); }
  Ex k(Value v) { return wrap(pool_, pool_.konst(v)); }

  Pool pool_;
  std::vector<Value> globals_{10, 20, 30};
  std::vector<Value> locals_{1, 2};
  std::vector<Value> params_{};
};

TEST_F(ExprTest, ParamSlotsResolveBeforeLocals) {
  params_ = {100, 200};
  // slot 0/1 -> params, slot 2/3 -> locals
  EXPECT_EQ(eval(pool_.local(0)), 100);
  EXPECT_EQ(eval(pool_.local(1)), 200);
  EXPECT_EQ(eval(pool_.local(2)), 1);
  EXPECT_EQ(eval(pool_.local(3)), 2);
  params_.clear();
}

TEST_F(ExprTest, ConstantsEvaluateToThemselves) {
  EXPECT_EQ(eval(pool_.konst(42)), 42);
  EXPECT_EQ(eval(pool_.konst(-5)), -5);
}

TEST_F(ExprTest, VariableReads) {
  EXPECT_EQ(eval(pool_.global(0)), 10);
  EXPECT_EQ(eval(pool_.global(2)), 30);
  EXPECT_EQ(eval(pool_.local(1)), 2);
  EXPECT_EQ(eval(pool_.self_pid()), 7);
}

TEST_F(ExprTest, Arithmetic) {
  EXPECT_EQ(eval((k(3) + k(4)).ref), 7);
  EXPECT_EQ(eval((k(3) - k(4)).ref), -1);
  EXPECT_EQ(eval((k(3) * k(4)).ref), 12);
  EXPECT_EQ(eval((k(9) / k(2)).ref), 4);
  EXPECT_EQ(eval((k(9) % k(2)).ref), 1);
  EXPECT_EQ(eval((-k(5)).ref), -5);
}

TEST_F(ExprTest, DivisionByZeroRaises) {
  EXPECT_THROW(eval((k(1) / k(0)).ref), ModelError);
  EXPECT_THROW(eval((k(1) % k(0)).ref), ModelError);
}

TEST_F(ExprTest, ComparisonsAndLogic) {
  EXPECT_EQ(eval((k(1) < k(2)).ref), 1);
  EXPECT_EQ(eval((k(2) < k(1)).ref), 0);
  EXPECT_EQ(eval((k(2) <= k(2)).ref), 1);
  EXPECT_EQ(eval((k(2) == k(2)).ref), 1);
  EXPECT_EQ(eval((k(2) != k(2)).ref), 0);
  EXPECT_EQ(eval((k(1) && k(0)).ref), 0);
  EXPECT_EQ(eval((k(1) || k(0)).ref), 1);
  EXPECT_EQ(eval((!k(0)).ref), 1);
  EXPECT_EQ(eval((!k(3)).ref), 0);
}

TEST_F(ExprTest, ConditionalPicksBranch) {
  EXPECT_EQ(eval(pool_.cond((k(1) < k(2)).ref, pool_.konst(10), pool_.konst(20))), 10);
  EXPECT_EQ(eval(pool_.cond((k(2) < k(1)).ref, pool_.konst(10), pool_.konst(20))), 20);
}

TEST_F(ExprTest, ChannelQueries) {
  const Ref c0 = pool_.konst(0);
  const Ref c1 = pool_.konst(1);
  EXPECT_EQ(eval(pool_.chan_query(Op::ChanLen, c0)), 2);
  EXPECT_EQ(eval(pool_.chan_query(Op::ChanFull, c0)), 0);
  EXPECT_EQ(eval(pool_.chan_query(Op::ChanEmpty, c0)), 0);
  EXPECT_EQ(eval(pool_.chan_query(Op::ChanEmpty, c1)), 1);
}

TEST_F(ExprTest, InterningDeduplicates) {
  const Ref a = (k(1) + k(2)).ref;
  const Ref b = (k(1) + k(2)).ref;
  EXPECT_EQ(a, b);
  const std::size_t before = pool_.size();
  (void)(k(1) + k(2));
  EXPECT_EQ(pool_.size(), before);
}

TEST_F(ExprTest, ReadsSharedClassification) {
  EXPECT_FALSE(pool_.reads_shared((l(0) + k(1)).ref));
  EXPECT_TRUE(pool_.reads_shared((g(0) + k(1)).ref));
  EXPECT_TRUE(pool_.reads_shared(pool_.chan_query(Op::ChanLen, pool_.konst(0))));
  EXPECT_FALSE(pool_.reads_shared(pool_.self_pid()));
}

TEST_F(ExprTest, ToStringRendersStructure) {
  EXPECT_EQ(pool_.to_string((g(0) + k(1)).ref), "(g0 + 1)");
  EXPECT_EQ(pool_.to_string((!l(1)).ref), "!(l1)");
  EXPECT_EQ(pool_.to_string(pool_.self_pid()), "_pid");
}

TEST_F(ExprTest, OutOfRangeSlotRaises) {
  EXPECT_THROW(eval(pool_.global(99)), ModelError);
  EXPECT_THROW(eval(pool_.local(99)), ModelError);
}

}  // namespace
}  // namespace pnp::expr
