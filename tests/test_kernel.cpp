// Kernel + compiler + explorer integration tests on small hand-built models:
// Promela executability semantics, rendezvous, buffered channels, sorted
// send, random/copy receive, else, atomic, deadlock and assertion detection.
#include <gtest/gtest.h>

#include "explore/explorer.h"
#include "kernel/machine.h"
#include "model/builder.h"

namespace pnp {
namespace {

using namespace model;
using kernel::Machine;

TEST(Kernel, BufferedProducerConsumerTerminates) {
  SystemSpec sys;
  const int ch = sys.add_channel("c", 2, 1);
  const int done = sys.add_global("done");

  ProcBuilder p(sys, "Producer");
  const LVar i = p.local("i");
  const int prod = p.finish(seq(do_(
      alt(seq(guard(p.l(i) < p.k(3)),
              send(p.c(Chan{ch}), {p.l(i)}),
              assign(i, p.l(i) + p.k(1)))),
      alt(seq(guard(p.l(i) == p.k(3)), break_())))));

  ProcBuilder q(sys, "Consumer");
  const LVar j = q.local("j");
  const LVar v = q.local("v");
  const int cons = q.finish(seq(
      do_(alt(seq(guard(q.l(j) < q.k(3)),
                  recv(q.c(Chan{ch}), {bind(v)}),
                  assert_(q.l(v) == q.l(j)),  // FIFO order preserved
                  assign(j, q.l(j) + q.k(1)))),
          alt(seq(guard(q.l(j) == q.k(3)), break_()))),
      assign(GVar{done}, q.k(1))));

  sys.spawn("prod", prod, {});
  sys.spawn("cons", cons, {});
  Machine m(sys);
  const auto r = explore::explore(m);
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
  EXPECT_TRUE(r.stats.complete);
  EXPECT_GT(r.stats.states_stored, 3u);
}

TEST(Kernel, RendezvousTransfersDataSynchronously) {
  SystemSpec sys;
  const int ch = sys.add_channel("rv", 0, 2);
  const int got = sys.add_global("got");

  ProcBuilder p(sys, "Sender");
  const int snd = p.finish(seq(send(p.c(Chan{ch}), {p.k(41), p.k(1)})));

  ProcBuilder q(sys, "Receiver");
  const LVar v = q.local("v");
  const int rcv = q.finish(seq(
      recv(q.c(Chan{ch}), {bind(v), match(q.k(1))}),
      assign(GVar{got}, q.l(v) + q.k(1))));

  sys.spawn("s", snd, {});
  sys.spawn("r", rcv, {});
  Machine m(sys);
  const auto r = explore::explore(m);
  EXPECT_TRUE(r.ok());
  // exactly one interleaving: handshake, then the assignment
  EXPECT_EQ(r.stats.states_stored, 3u);
}

TEST(Kernel, RendezvousPatternMismatchDeadlocks) {
  SystemSpec sys;
  const int ch = sys.add_channel("rv", 0, 2);

  ProcBuilder p(sys, "Sender");
  const int snd = p.finish(seq(send(p.c(Chan{ch}), {p.k(41), p.k(1)})));

  ProcBuilder q(sys, "Receiver");
  const LVar v = q.local("v");
  // expects tag 2, sender offers tag 1 -> no handshake possible
  const int rcv = q.finish(seq(recv(q.c(Chan{ch}), {bind(v), match(q.k(2))})));

  sys.spawn("s", snd, {});
  sys.spawn("r", rcv, {});
  Machine m(sys);
  const auto r = explore::explore(m);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, explore::ViolationKind::Deadlock);
}

TEST(Kernel, AssertionViolationProducesTrace) {
  SystemSpec sys;
  const int g = sys.add_global("x");
  ProcBuilder p(sys, "P");
  const int pt = p.finish(seq(assign(GVar{g}, p.k(5)),
                              assert_(p.g(GVar{g}) == p.k(4), "x must be 4")));
  sys.spawn("p", pt, {});
  Machine m(sys);
  const auto r = explore::explore(m);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, explore::ViolationKind::AssertFailed);
  EXPECT_EQ(r.violation->trace.size(), 2u);  // assign, then failing assert
}

TEST(Kernel, InvariantCheckedOnEveryState) {
  SystemSpec sys;
  const int g = sys.add_global("x");
  ProcBuilder p(sys, "P");
  const int pt = p.finish(seq(assign(GVar{g}, p.k(1)), assign(GVar{g}, p.k(0))));
  sys.spawn("p", pt, {});
  Machine m(sys);

  explore::Options opt;
  opt.invariant = (expr::wrap(sys.exprs, sys.exprs.global(g)) ==
                   expr::wrap(sys.exprs, sys.exprs.konst(0)))
                      .ref;
  opt.invariant_name = "x stays 0";
  const auto r = explore::explore(m, opt);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, explore::ViolationKind::InvariantViolated);
}

TEST(Kernel, ElseFiresOnlyWhenNoSiblingEnabled) {
  SystemSpec sys;
  const int ch = sys.add_channel("c", 1, 1);
  const int took_else = sys.add_global("took_else");

  ProcBuilder p(sys, "P");
  const LVar v = p.local("v");
  const int pt = p.finish(seq(
      if_(alt(seq(recv(p.c(Chan{ch}), {bind(v)}))),           // channel empty:
          alt_else(seq(assign(GVar{took_else}, p.k(1)))))));  // must take else
  sys.spawn("p", pt, {});
  Machine m(sys);

  explore::Options opt;
  // took_else must become 1 eventually; check final reachable assignment via
  // absence of the receive path: state count is tiny, assert the invariant
  // that v is never bound.
  const auto r = explore::explore(m, opt);
  EXPECT_TRUE(r.ok());

  // Now pre-load the channel via a second producer: else must NOT be taken.
  SystemSpec sys2;
  const int ch2 = sys2.add_channel("c", 1, 1);
  const int took_else2 = sys2.add_global("took_else");
  ProcBuilder pr(sys2, "Pre");
  const int pre = pr.finish(seq(send(pr.c(Chan{ch2}), {pr.k(9)})));
  ProcBuilder p2(sys2, "P");
  const LVar v2 = p2.local("v");
  const int pt2 = p2.finish(seq(
      recv(p2.c(Chan{ch2}), {match(p2.k(9))}, "sync on producer"),
      send(p2.c(Chan{ch2}), {p2.k(9)}),
      if_(alt(seq(recv(p2.c(Chan{ch2}), {bind(v2)}))),
          alt_else(seq(assign(GVar{took_else2}, p2.k(1)))))));
  sys2.spawn("pre", pre, {});
  sys2.spawn("p", pt2, {});
  Machine m2(sys2);
  explore::Options opt2;
  opt2.invariant = (expr::wrap(sys2.exprs, sys2.exprs.global(took_else2)) ==
                    expr::wrap(sys2.exprs, sys2.exprs.konst(0)))
                       .ref;
  opt2.invariant_name = "else never taken when message available";
  const auto r2 = explore::explore(m2, opt2);
  EXPECT_TRUE(r2.ok()) << (r2.violation ? r2.violation->message : "");
}

TEST(Kernel, SortedSendOrdersByFirstField) {
  SystemSpec sys;
  const int ch = sys.add_channel("pq", 3, 2);
  ProcBuilder p(sys, "P");
  const LVar v = p.local("v");
  SendOpts sorted;
  sorted.sorted = true;
  const int pt = p.finish(seq(
      send(p.c(Chan{ch}), {p.k(2), p.k(20)}, "", sorted),
      send(p.c(Chan{ch}), {p.k(1), p.k(10)}, "", sorted),
      send(p.c(Chan{ch}), {p.k(3), p.k(30)}, "", sorted),
      recv(p.c(Chan{ch}), {match(p.k(1)), bind(v)}),
      assert_(p.l(v) == p.k(10)),
      recv(p.c(Chan{ch}), {match(p.k(2)), bind(v)}),
      assert_(p.l(v) == p.k(20)),
      recv(p.c(Chan{ch}), {match(p.k(3)), bind(v)}),
      assert_(p.l(v) == p.k(30))));
  sys.spawn("p", pt, {});
  Machine m(sys);
  const auto r = explore::explore(m);
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(Kernel, RandomReceiveFetchesFirstMatchAnywhere) {
  SystemSpec sys;
  const int ch = sys.add_channel("c", 3, 2);
  ProcBuilder p(sys, "P");
  const LVar v = p.local("v");
  RecvOpts rnd;
  rnd.random = true;
  const int pt = p.finish(seq(
      send(p.c(Chan{ch}), {p.k(1), p.k(10)}),
      send(p.c(Chan{ch}), {p.k(2), p.k(20)}),
      recv(p.c(Chan{ch}), {match(p.k(2)), bind(v)}, "", rnd),
      assert_(p.l(v) == p.k(20)),
      // head (tag 1) still present
      recv(p.c(Chan{ch}), {match(p.k(1)), bind(v)}),
      assert_(p.l(v) == p.k(10))));
  sys.spawn("p", pt, {});
  Machine m(sys);
  const auto r = explore::explore(m);
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(Kernel, CopyReceiveLeavesMessageBuffered) {
  SystemSpec sys;
  const int ch = sys.add_channel("c", 1, 1);
  ProcBuilder p(sys, "P");
  const LVar v = p.local("v");
  RecvOpts copy;
  copy.copy = true;
  const int pt = p.finish(seq(
      send(p.c(Chan{ch}), {p.k(7)}),
      recv(p.c(Chan{ch}), {bind(v)}, "", copy),
      assert_(p.l(v) == p.k(7)),
      recv(p.c(Chan{ch}), {bind(v)}),  // still there: remove it now
      assert_(p.l(v) == p.k(7))));
  sys.spawn("p", pt, {});
  Machine m(sys);
  const auto r = explore::explore(m);
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(Kernel, LossyChannelDropsWhenFull) {
  SystemSpec sys;
  const int ch = sys.add_channel("c", 1, 1, /*lossy=*/true);
  ProcBuilder p(sys, "P");
  const LVar v = p.local("v");
  const int pt = p.finish(seq(
      send(p.c(Chan{ch}), {p.k(1)}),
      send(p.c(Chan{ch}), {p.k(2)}),  // dropped: capacity 1
      recv(p.c(Chan{ch}), {bind(v)}),
      assert_(p.l(v) == p.k(1)),
      // channel now empty; a blocking receive here would deadlock, which
      // proves the second message is gone
      if_(alt(seq(recv(p.c(Chan{ch}), {bind(v)}),
                  assert_(p.k(0) == p.k(1), "unreachable"))),
          alt_else(seq(skip())))));
  sys.spawn("p", pt, {});
  Machine m(sys);
  const auto r = explore::explore(m);
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(Kernel, AtomicReducesInterleavings) {
  auto build = [](bool use_atomic) {
    auto sys = std::make_unique<SystemSpec>();
    const int g = sys->add_global("x");
    for (int pi = 0; pi < 2; ++pi) {
      ProcBuilder p(*sys, "P" + std::to_string(pi));
      Seq body = seq(assign(GVar{g}, p.g(GVar{g}) + p.k(1)),
                     assign(GVar{g}, p.g(GVar{g}) + p.k(1)),
                     assign(GVar{g}, p.g(GVar{g}) + p.k(1)));
      const int pt =
          p.finish(use_atomic ? seq(atomic(std::move(body))) : std::move(body));
      sys->spawn("p" + std::to_string(pi), pt, {});
    }
    return sys;
  };
  auto sys_plain = build(false);
  auto sys_atomic = build(true);
  Machine m1(*sys_plain), m2(*sys_atomic);
  const auto r1 = explore::explore(m1);
  const auto r2 = explore::explore(m2);
  EXPECT_TRUE(r1.ok());
  EXPECT_TRUE(r2.ok());
  EXPECT_LT(r2.stats.states_stored, r1.stats.states_stored);
}

TEST(Kernel, EndLabelMakesBlockedStateValid) {
  // A server that loops forever waiting for requests is not a deadlock when
  // its wait point carries an end label.
  SystemSpec sys;
  const int ch = sys.add_channel("c", 1, 1);
  ProcBuilder p(sys, "Server");
  const LVar v = p.local("v");
  const int srv = p.finish(seq(do_(
      alt(seq(end_label(), recv(p.c(Chan{ch}), {bind(v)}))))));
  ProcBuilder q(sys, "Client");
  const int cli = q.finish(seq(send(q.c(Chan{ch}), {q.k(1)})));
  sys.spawn("srv", srv, {});
  sys.spawn("cli", cli, {});
  Machine m(sys);
  const auto r = explore::explore(m);
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");

  // Without the end label the same system reports an invalid end state.
  SystemSpec sys2;
  const int ch2 = sys2.add_channel("c", 1, 1);
  ProcBuilder p2(sys2, "Server");
  const LVar v2 = p2.local("v");
  const int srv2 =
      p2.finish(seq(do_(alt(seq(recv(p2.c(Chan{ch2}), {bind(v2)}))))));
  ProcBuilder q2(sys2, "Client");
  const int cli2 = q2.finish(seq(send(q2.c(Chan{ch2}), {q2.k(1)})));
  sys2.spawn("srv", srv2, {});
  sys2.spawn("cli", cli2, {});
  Machine m2(sys2);
  const auto r2 = explore::explore(m2);
  ASSERT_TRUE(r2.violation.has_value());
  EXPECT_EQ(r2.violation->kind, explore::ViolationKind::Deadlock);
}

TEST(Kernel, BfsFindsShortestCounterexample) {
  SystemSpec sys;
  const int g = sys.add_global("x");
  ProcBuilder p(sys, "P");
  // two paths to the violation: a long one and a short one
  const int pt = p.finish(seq(
      if_(alt(seq(skip(), skip(), skip(), assign(GVar{g}, p.k(1)))),
          alt(seq(assign(GVar{g}, p.k(1))))),
      assert_(p.g(GVar{g}) == p.k(0), "x must stay 0")));
  sys.spawn("p", pt, {});
  Machine m(sys);
  explore::Options opt;
  opt.bfs = true;
  const auto r = explore::explore(m, opt);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->trace.size(), 2u);  // short assign + assert
}

TEST(Kernel, MaxStatesTruncatesSearch) {
  SystemSpec sys;
  const int g = sys.add_global("x");
  ProcBuilder p(sys, "P");
  const int pt = p.finish(seq(do_(
      alt(seq(guard(p.g(GVar{g}) < p.k(1000)),
              assign(GVar{g}, p.g(GVar{g}) + p.k(1)))),
      alt(seq(guard(p.g(GVar{g}) >= p.k(1000)), break_())))));
  sys.spawn("p", pt, {});
  Machine m(sys);
  explore::Options opt;
  opt.max_states = 50;
  opt.check_deadlock = false;
  const auto r = explore::explore(m, opt);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.stats.complete);
  EXPECT_LE(r.stats.states_stored, 51u);
}

}  // namespace
}  // namespace pnp
// -- appended edge-case suites -------------------------------------------------

namespace pnp {
namespace {

using namespace model;
using kernel::Machine;

TEST(KernelAtomic, AtomicityIsLostWhenBlockedAndResumes) {
  // A enters an atomic region, blocks on an empty channel mid-region; B
  // must get to run (fills the channel); A then completes.
  SystemSpec sys;
  const int ch = sys.add_channel("c", 1, 1);
  const int order = sys.add_global("order");  // records who moved at the block

  ProcBuilder a(sys, "A");
  const LVar v = a.local("v");
  const int pa = a.finish(seq(atomic(seq(
      assign(GVar{order}, a.k(1)),
      recv(a.c(Chan{ch}), {bind(v)}),  // blocks: channel empty
      assign(GVar{order}, a.g(GVar{order}) + a.k(10))))));

  ProcBuilder b(sys, "B");
  const int pb = b.finish(seq(guard(b.g(GVar{order}) == b.k(1)),
                              send(b.c(Chan{ch}), {b.k(5)})));

  sys.spawn("a", pa, {});
  sys.spawn("b", pb, {});
  Machine m(sys);
  const auto r = explore::explore(m);
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(KernelAtomic, AtomicHolderExcludesOthersWhileRunnable) {
  // While A is inside its atomic region and runnable, B must not interleave:
  // B asserts it never observes the intermediate value x == 1.
  SystemSpec sys;
  const int x = sys.add_global("x");
  ProcBuilder a(sys, "A");
  const int pa = a.finish(seq(
      atomic(seq(assign(GVar{x}, a.k(1)), assign(GVar{x}, a.k(2))))));
  ProcBuilder b(sys, "B");
  const int pb = b.finish(seq(do_(
      alt(seq(guard(b.g(GVar{x}) == b.k(2)), break_())),
      alt(seq(guard(b.g(GVar{x}) < b.k(2)),
              assert_(b.g(GVar{x}) != b.k(1), "no intermediate value"))))));
  sys.spawn("a", pa, {});
  sys.spawn("b", pb, {});
  Machine m(sys);
  const auto r = explore::explore(m);
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(KernelRendezvous, CompetingReceiversYieldDistinctSuccessors) {
  SystemSpec sys;
  const int ch = sys.add_channel("rv", 0, 1);
  ProcBuilder s(sys, "S");
  const int ps = s.finish(seq(send(s.c(Chan{ch}), {s.k(1)})));
  ProcBuilder r(sys, "R");
  const LVar v = r.local("v");
  const int pr = r.finish(seq(recv(r.c(Chan{ch}), {bind(v)})));
  sys.spawn("s", ps, {});
  sys.spawn("r1", pr, {});
  sys.spawn("r2", pr, {});
  Machine m(sys);
  std::vector<kernel::Succ> succs;
  m.successors(m.initial(), succs);
  // one handshake per competing receiver
  ASSERT_EQ(succs.size(), 2u);
  EXPECT_NE(succs[0].second.partner_pid, succs[1].second.partner_pid);
}

TEST(KernelRendezvous, ChannelIdsFlowThroughParameters) {
  // The same proctype instantiated twice with different channel arguments:
  // messages must not cross over.
  SystemSpec sys;
  const int c1 = sys.add_channel("c1", 1, 1);
  const int c2 = sys.add_channel("c2", 1, 1);
  ProcBuilder w(sys, "Writer");
  const LVar chan = w.param("chan");
  const LVar val = w.param("val");
  const int pw = w.finish(seq(send(w.l(chan), {w.l(val)})));

  ProcBuilder r(sys, "Reader");
  const LVar v = r.local("v");
  const int pr = r.finish(seq(
      recv(r.c(Chan{c1}), {bind(v)}), assert_(r.l(v) == r.k(11)),
      recv(r.c(Chan{c2}), {bind(v)}), assert_(r.l(v) == r.k(22))));

  sys.spawn("w1", pw, {static_cast<Value>(c1), 11});
  sys.spawn("w2", pw, {static_cast<Value>(c2), 22});
  sys.spawn("r", pr, {});
  Machine m(sys);
  const auto res = explore::explore(m);
  EXPECT_TRUE(res.ok()) << (res.violation ? res.violation->message : "");
}

TEST(KernelState, FlatLayoutRoundTrips) {
  SystemSpec sys;
  sys.add_global("g", 7);
  const int ch = sys.add_channel("c", 2, 3);
  ProcBuilder p(sys, "P");
  const LVar a = p.local("a", 3);
  const int pp = p.finish(seq(send(p.c(Chan{ch}), {p.l(a), p.k(2), p.k(1)}),
                              send(p.c(Chan{ch}), {p.k(9), p.k(8), p.k(7)})));
  sys.spawn("p", pp, {});
  Machine m(sys);
  kernel::State s = m.initial();
  EXPECT_EQ(m.layout().global(s, 0), 7);
  EXPECT_EQ(m.layout().chan_len(s, ch), 0);

  std::vector<kernel::Succ> succs;
  m.successors(s, succs);
  ASSERT_EQ(succs.size(), 1u);
  s = succs[0].first;
  EXPECT_EQ(m.layout().chan_len(s, ch), 1);
  EXPECT_EQ(m.layout().chan_msg(s, ch, 0)[0], 3);
  EXPECT_EQ(m.layout().chan_msg(s, ch, 0)[1], 2);

  succs.clear();
  m.successors(s, succs);
  ASSERT_EQ(succs.size(), 1u);
  s = succs[0].first;
  EXPECT_EQ(m.layout().chan_len(s, ch), 2);
  EXPECT_EQ(m.layout().chan_msg(s, ch, 1)[0], 9);

  // equal states produce equal keys; different states different keys
  EXPECT_EQ(kernel::encode_key(s), kernel::encode_key(s));
  EXPECT_NE(kernel::encode_key(s), kernel::encode_key(m.initial()));
}

TEST(KernelState, ErasedSlotsAreZeroedForCanonicalEncoding) {
  SystemSpec sys;
  const int ch = sys.add_channel("c", 2, 1);
  ProcBuilder p(sys, "P");
  const LVar v = p.local("v");
  const int pp = p.finish(seq(send(p.c(Chan{ch}), {p.k(5)}),
                              recv(p.c(Chan{ch}), {bind(v)})));
  sys.spawn("p", pp, {});
  Machine m(sys);
  kernel::State s = m.initial();
  std::vector<kernel::Succ> succs;
  m.successors(s, succs);
  s = std::move(succs[0].first);  // sent
  succs.clear();
  m.successors(s, succs);
  kernel::State after = std::move(succs[0].first);  // received
  // after receiving, the channel region must encode identically to a state
  // that never held the message (apart from pc/local differences): check
  // the queue length and freed slot directly
  EXPECT_EQ(m.layout().chan_len(after, ch), 0);
  EXPECT_EQ(m.layout().chan_msg(after, ch, 0)[0], 0);  // zeroed slot
}

TEST(Kernel, SortedPushMultiFieldBoundaryInsertion) {
  // Regression for the sorted-send index math: with arity > 1 the insert
  // position and the tail shift are scaled by the arity, and messages with
  // equal leading fields must order by the later ones. Exercises insertion
  // at the front, into the middle of equal-prefix neighbors, and at the
  // very end of a queue that becomes full (zero-length tail shift).
  SystemSpec sys;
  const int ch = sys.add_channel("pq", 3, 2);
  const kernel::Layout lay(sys);
  kernel::State s;
  s.mem.assign(static_cast<std::size_t>(lay.size()), 0);

  auto msg_is = [&](int i, kernel::Value a, kernel::Value b) {
    EXPECT_EQ(lay.chan_msg(s, ch, i)[0], a) << "msg " << i;
    EXPECT_EQ(lay.chan_msg(s, ch, i)[1], b) << "msg " << i;
  };

  const kernel::Value m19[] = {1, 9};
  const kernel::Value m15[] = {1, 5};
  const kernel::Value m17[] = {1, 7};
  lay.chan_push_sorted(s, ch, m19);
  lay.chan_push_sorted(s, ch, m15);  // equal prefix: must land before (1,9)
  lay.chan_push_sorted(s, ch, m17);  // middle insert; queue is now full
  ASSERT_EQ(lay.chan_len(s, ch), 3);
  msg_is(0, 1, 5);
  msg_is(1, 1, 7);
  msg_is(2, 1, 9);

  // erase the middle message, then insert an equal-prefix message that
  // sorts before everything (negative second field)
  lay.chan_erase(s, ch, 1);
  ASSERT_EQ(lay.chan_len(s, ch), 2);
  const kernel::Value mneg[] = {1, -2};
  lay.chan_push_sorted(s, ch, mneg);
  ASSERT_EQ(lay.chan_len(s, ch), 3);
  msg_is(0, 1, -2);
  msg_is(1, 1, 5);
  msg_is(2, 1, 9);

  // end-of-queue insertion into the last free slot: pos == len, so the
  // tail shift is empty
  lay.chan_erase(s, ch, 0);
  const kernel::Value mbig[] = {2, 0};
  lay.chan_push_sorted(s, ch, mbig);
  ASSERT_EQ(lay.chan_len(s, ch), 3);
  msg_is(0, 1, 5);
  msg_is(1, 1, 9);
  msg_is(2, 2, 0);
}

}  // namespace
}  // namespace pnp
