// LTL engine tests: parser, Büchi translation structure, and end-to-end
// model checking (with stutter extension at terminal states) on small
// hand-built systems.
#include <gtest/gtest.h>

#include "kernel/machine.h"
#include "ltl/buchi.h"
#include "ltl/product.h"
#include "model/builder.h"

namespace pnp::ltl {
namespace {

using namespace model;

// -- parser ---------------------------------------------------------------

class LtlParse : public ::testing::Test {
 protected:
  LtlParse() {
    ctx_.add("p", 0);
    ctx_.add("q", 1);
  }
  std::string roundtrip(const std::string& text) {
    return pool_.to_string(parse_ltl(pool_, ctx_, text), &ctx_);
  }
  FormulaPool pool_;
  PropertyContext ctx_;
};

TEST_F(LtlParse, AtomsAndNegation) {
  EXPECT_EQ(roundtrip("p"), "p");
  EXPECT_EQ(roundtrip("!p"), "!p");
  EXPECT_EQ(roundtrip("!!p"), "p");
  EXPECT_EQ(roundtrip("true"), "true");
}

TEST_F(LtlParse, TemporalSugar) {
  EXPECT_EQ(roundtrip("G p"), "G(p)");
  EXPECT_EQ(roundtrip("[] p"), "G(p)");
  EXPECT_EQ(roundtrip("F p"), "F(p)");
  EXPECT_EQ(roundtrip("<> p"), "F(p)");
  EXPECT_EQ(roundtrip("X p"), "X(p)");
}

TEST_F(LtlParse, PrecedenceBindsUntilTighterThanAnd) {
  // p U q && q U p  ==  (p U q) && (q U p)
  EXPECT_EQ(roundtrip("p U q && q U p"), "((p U q) && (q U p))");
}

TEST_F(LtlParse, ImplicationDesugars) {
  EXPECT_EQ(roundtrip("p -> q"), "(!p || q)");
}

TEST_F(LtlParse, NegationDualizesTemporalOps) {
  EXPECT_EQ(roundtrip("!G p"), "F(!p)");
  EXPECT_EQ(roundtrip("!F p"), "G(!p)");
  EXPECT_EQ(roundtrip("!(p U q)"), "(!p R !q)");
  EXPECT_EQ(roundtrip("!X p"), "X(!p)");
}

TEST_F(LtlParse, UnknownPropositionRaises) {
  EXPECT_THROW(parse_ltl(pool_, ctx_, "G unknown_prop"), ModelError);
}

TEST_F(LtlParse, SyntaxErrorRaises) {
  EXPECT_THROW(parse_ltl(pool_, ctx_, "G (p"), ModelError);
  EXPECT_THROW(parse_ltl(pool_, ctx_, "p U"), ModelError);
  EXPECT_THROW(parse_ltl(pool_, ctx_, "p #"), ModelError);
}

// -- Büchi structure ---------------------------------------------------------

TEST(LtlBuchi, GlobalPHasSingleSelfLoopShape) {
  FormulaPool pool;
  PropertyContext ctx;
  ctx.add("p", 0);
  const FRef f = parse_ltl(pool, ctx, "G p");
  const BuchiAutomaton ba = build_buchi(pool, f, &ctx);
  // G p has no Until subformulas: every state accepting
  EXPECT_EQ(ba.n_acceptance_sets, 0);
  for (const BuchiState& s : ba.states) EXPECT_TRUE(s.accepting);
  // at least one initial state requiring p
  bool found = false;
  for (const BuchiState& s : ba.states)
    if (s.initial)
      for (const Literal& lit : s.label)
        if (lit.prop == 0 && !lit.negated) found = true;
  EXPECT_TRUE(found);
}

TEST(LtlBuchi, FinallyPHasAcceptanceSet) {
  FormulaPool pool;
  PropertyContext ctx;
  ctx.add("p", 0);
  const FRef f = parse_ltl(pool, ctx, "F p");
  const BuchiAutomaton ba = build_buchi(pool, f, &ctx);
  EXPECT_EQ(ba.n_acceptance_sets, 1);
  bool has_accepting = false;
  for (const BuchiState& s : ba.states) has_accepting |= s.accepting;
  EXPECT_TRUE(has_accepting);
}

// -- model checking -----------------------------------------------------------

/// One process setting global x through the given sequence of values, then
/// stopping (stutter extension applies at the end).
struct Lin {
  SystemSpec sys;
  int x;
  std::unique_ptr<kernel::Machine> m;

  explicit Lin(const std::vector<Value>& values, Value init = 0) {
    x = sys.add_global("x", init);
    ProcBuilder p(sys, "P");
    Seq body;
    for (Value v : values) body.push_back(assign(GVar{x}, p.k(v)));
    p.finish(std::move(body));
    sys.spawn("p", 0, {});
    m = std::make_unique<kernel::Machine>(sys);
  }

  PropertyContext props() {
    PropertyContext ctx;
    ctx.add("x0", (expr::wrap(sys.exprs, sys.exprs.global(x)) ==
                   expr::wrap(sys.exprs, sys.exprs.konst(0)))
                      .ref);
    ctx.add("x1", (expr::wrap(sys.exprs, sys.exprs.global(x)) ==
                   expr::wrap(sys.exprs, sys.exprs.konst(1)))
                      .ref);
    ctx.add("x2", (expr::wrap(sys.exprs, sys.exprs.global(x)) ==
                   expr::wrap(sys.exprs, sys.exprs.konst(2)))
                      .ref);
    return ctx;
  }
};

TEST(LtlCheck, GlobalHoldsOnConstantRun) {
  Lin lin({0, 0, 0});
  EXPECT_TRUE(check_ltl(*lin.m, lin.props(), "G x0").holds);
}

TEST(LtlCheck, GlobalFailsWhenValueChanges) {
  Lin lin({0, 1});
  const LtlResult r = check_ltl(*lin.m, lin.props(), "G x0");
  ASSERT_FALSE(r.holds);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_FALSE(r.violation->trace.empty());
}

TEST(LtlCheck, FinallyHoldsViaStutterAtTermination) {
  Lin lin({1});
  EXPECT_TRUE(check_ltl(*lin.m, lin.props(), "F x1").holds);
  // and the terminal value persists
  EXPECT_TRUE(check_ltl(*lin.m, lin.props(), "F G x1").holds);
}

TEST(LtlCheck, FinallyFailsWhenNeverReached) {
  Lin lin({1, 0});
  EXPECT_FALSE(check_ltl(*lin.m, lin.props(), "F x2").holds);
}

TEST(LtlCheck, UntilSemantics) {
  Lin lin({0, 0, 1});  // x stays 0 until it becomes 1
  EXPECT_TRUE(check_ltl(*lin.m, lin.props(), "x0 U x1").holds);
  // x0 already holds initially, so ANY formula `phi U x0` holds trivially...
  EXPECT_TRUE(check_ltl(*lin.m, lin.props(), "x2 U x0").holds);
  // ...but the goal side is not satisfied by the guard side: x1 U x2 needs
  // x2 eventually AND x1 meanwhile; neither happens from the start.
  EXPECT_FALSE(check_ltl(*lin.m, lin.props(), "x1 U x2").holds);
}

TEST(LtlCheck, UntilFailsWhenGuardBreaksBeforeGoal) {
  Lin lin({2, 1});  // x: 0 -> 2 -> 1 ; x0 broken by 2 before 1
  EXPECT_FALSE(check_ltl(*lin.m, lin.props(), "x0 U x1").holds);
}

TEST(LtlCheck, NextStepsThroughAssignments) {
  Lin lin({1, 2});
  EXPECT_TRUE(check_ltl(*lin.m, lin.props(), "x0 && X (x1 && X x2)").holds);
  EXPECT_FALSE(check_ltl(*lin.m, lin.props(), "X x2").holds);
}

TEST(LtlCheck, WeakUntilAllowsForeverGuard) {
  Lin lin({0, 0});
  EXPECT_TRUE(check_ltl(*lin.m, lin.props(), "x0 W x1").holds);
  EXPECT_FALSE(check_ltl(*lin.m, lin.props(), "x0 U x1").holds);
}

TEST(LtlCheck, ReleaseSemantics) {
  Lin lin({0, 0});
  // x1 R x0 : x0 must hold forever (x1 never releases) -- true here
  EXPECT_TRUE(check_ltl(*lin.m, lin.props(), "x1 R x0").holds);
  Lin lin2({1});
  // x0 violated at the second state unless released first
  EXPECT_FALSE(check_ltl(*lin2.m, lin2.props(), "x2 R x0").holds);
}

TEST(LtlCheck, ResponsePropertyOnCyclicSystem) {
  // A process cycling x: 0 -> 1 -> 2 -> 0 -> ... forever.
  SystemSpec sys;
  const int x = sys.add_global("x", 0);
  ProcBuilder p(sys, "P");
  p.finish(seq(do_(alt(seq(assign(GVar{x}, p.k(1)), assign(GVar{x}, p.k(2)),
                           assign(GVar{x}, p.k(0)))))));
  sys.spawn("p", 0, {});
  kernel::Machine m(sys);
  PropertyContext ctx;
  ctx.add("x1", (expr::wrap(sys.exprs, sys.exprs.global(x)) ==
                 expr::wrap(sys.exprs, sys.exprs.konst(1)))
                    .ref);
  ctx.add("x2", (expr::wrap(sys.exprs, sys.exprs.global(x)) ==
                 expr::wrap(sys.exprs, sys.exprs.konst(2)))
                    .ref);
  EXPECT_TRUE(check_ltl(m, ctx, "G (x1 -> F x2)").holds);
  EXPECT_TRUE(check_ltl(m, ctx, "G F x1").holds);
  EXPECT_FALSE(check_ltl(m, ctx, "F G x1").holds);
}

TEST(LtlCheck, WeakFairnessDiscardsStarvationCycles) {
  // Two independent processes: A toggles x forever, B sets y once. Under an
  // unfair scheduler B can starve, so F y1 fails; weak fairness forces B to
  // move eventually.
  SystemSpec sys;
  const int x = sys.add_global("x", 0);
  const int y = sys.add_global("y", 0);
  ProcBuilder a(sys, "A");
  a.finish(seq(do_(alt(seq(assign(GVar{x}, a.k(1) - a.g(GVar{x})))))));
  ProcBuilder b(sys, "B");
  b.finish(seq(assign(GVar{y}, b.k(1)), end_label()));
  sys.spawn("a", 0, {});
  sys.spawn("b", 1, {});
  kernel::Machine m(sys);
  PropertyContext ctx;
  ctx.add("y1", (expr::wrap(sys.exprs, sys.exprs.global(y)) ==
                 expr::wrap(sys.exprs, sys.exprs.konst(1)))
                    .ref);
  EXPECT_FALSE(check_ltl(m, ctx, "F y1").holds);
  CheckOptions fair;
  fair.weak_fairness = true;
  EXPECT_TRUE(check_ltl(m, ctx, "F y1", fair).holds);
}

TEST(LtlCheck, WeakFairnessStillFindsRealViolations) {
  // x never becomes 2 on any execution: fairness must not mask the
  // violation of F x2.
  SystemSpec sys;
  const int x = sys.add_global("x", 0);
  ProcBuilder a(sys, "A");
  a.finish(seq(do_(alt(seq(assign(GVar{x}, a.k(1) - a.g(GVar{x})))))));
  sys.spawn("a", 0, {});
  kernel::Machine m(sys);
  PropertyContext ctx;
  ctx.add("x2", (expr::wrap(sys.exprs, sys.exprs.global(x)) ==
                 expr::wrap(sys.exprs, sys.exprs.konst(2)))
                    .ref);
  ctx.add("x1", (expr::wrap(sys.exprs, sys.exprs.global(x)) ==
                 expr::wrap(sys.exprs, sys.exprs.konst(1)))
                    .ref);
  CheckOptions fair;
  fair.weak_fairness = true;
  EXPECT_FALSE(check_ltl(m, ctx, "F x2", fair).holds);
  // sanity: a property that does hold under fairness (and even without)
  EXPECT_TRUE(check_ltl(m, ctx, "G F x1", fair).holds);
}

TEST(LtlCheck, WeakFairnessDoesNotAffectBlockedProcesses) {
  // B blocks forever on an empty channel: fairness must not demand that a
  // DISABLED process moves, so A's cycle is still fairly admissible and
  // G !y1 holds.
  SystemSpec sys;
  const int x = sys.add_global("x", 0);
  const int y = sys.add_global("y", 0);
  const int ch = sys.add_channel("c", 1, 1);
  ProcBuilder a(sys, "A");
  a.finish(seq(do_(alt(seq(assign(GVar{x}, a.k(1) - a.g(GVar{x})))))));
  ProcBuilder b(sys, "B");
  const LVar v = b.local("v");
  b.finish(seq(recv(b.c(Chan{ch}), {bind(v)}),  // never satisfiable
               assign(GVar{y}, b.k(1))));
  sys.spawn("a", 0, {});
  sys.spawn("b", 1, {});
  kernel::Machine m(sys);
  PropertyContext ctx;
  ctx.add("y1", (expr::wrap(sys.exprs, sys.exprs.global(y)) ==
                 expr::wrap(sys.exprs, sys.exprs.konst(1)))
                    .ref);
  CheckOptions fair;
  fair.weak_fairness = true;
  EXPECT_TRUE(check_ltl(m, ctx, "G !y1", fair).holds);
  // and F y1 is (correctly) violated even under fairness: B is blocked,
  // not starved
  EXPECT_FALSE(check_ltl(m, ctx, "F y1", fair).holds);
}

TEST(LtlCheck, CounterexampleMarksCycle) {
  SystemSpec sys;
  const int x = sys.add_global("x", 0);
  ProcBuilder p(sys, "P");
  p.finish(seq(do_(alt(seq(assign(GVar{x}, p.k(1)), assign(GVar{x}, p.k(0)))))));
  sys.spawn("p", 0, {});
  kernel::Machine m(sys);
  PropertyContext ctx;
  ctx.add("x1", (expr::wrap(sys.exprs, sys.exprs.global(x)) ==
                 expr::wrap(sys.exprs, sys.exprs.konst(1)))
                    .ref);
  const LtlResult r = check_ltl(m, ctx, "F G x1");
  ASSERT_FALSE(r.holds);
  bool has_marker = false;
  for (const auto& step : r.violation->trace.steps)
    if (step.description.find("accepting cycle") != std::string::npos)
      has_marker = true;
  EXPECT_TRUE(has_marker);
}

}  // namespace
}  // namespace pnp::ltl
