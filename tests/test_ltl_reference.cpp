// Differential testing of the LTL pipeline (negation -> GPVW Büchi ->
// product -> nested DFS) against a NAIVE reference semantics:
//
//   * random NNF formulas over 3 propositions,
//   * random lasso words (finite prefix + cycle of proposition valuations),
//   * a deterministic kernel system whose single infinite run is exactly
//     that lasso,
//   * reference evaluation by backward fixpoint over the unrolled lasso.
//
// Any divergence is a bug in the translator, the degeneralization, the
// product, or the cycle search. 160 seeded cases run per suite.
#include <gtest/gtest.h>

#include <random>

#include "kernel/machine.h"
#include "ltl/product.h"
#include "model/builder.h"

namespace pnp::ltl {
namespace {

using model::Value;

constexpr int kProps = 3;

// -- random formulas -----------------------------------------------------------

FRef random_formula(FormulaPool& pool, std::mt19937_64& rng, int depth) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 1 : 7);
  switch (pick(rng)) {
    case 0:
      return pool.prop(static_cast<int>(rng() % kProps), rng() % 2 == 0);
    case 1:
      return rng() % 4 == 0 ? (rng() % 2 ? pool.tru() : pool.fls())
                            : pool.prop(static_cast<int>(rng() % kProps),
                                        rng() % 2 == 0);
    case 2:
      return pool.and_(random_formula(pool, rng, depth - 1),
                       random_formula(pool, rng, depth - 1));
    case 3:
      return pool.or_(random_formula(pool, rng, depth - 1),
                      random_formula(pool, rng, depth - 1));
    case 4:
      return pool.next(random_formula(pool, rng, depth - 1));
    case 5:
      return pool.until(random_formula(pool, rng, depth - 1),
                        random_formula(pool, rng, depth - 1));
    case 6:
      return pool.release(random_formula(pool, rng, depth - 1),
                          random_formula(pool, rng, depth - 1));
    default:
      return rng() % 2 ? pool.finally_(random_formula(pool, rng, depth - 1))
                       : pool.globally(random_formula(pool, rng, depth - 1));
  }
}

// -- reference semantics on a lasso word ----------------------------------------

/// word: valuations (bitmasks over kProps); positions >= prefix wrap into
/// the cycle. Returns whether `f` holds at position `pos`.
class NaiveEval {
 public:
  NaiveEval(const FormulaPool& pool, std::vector<std::uint32_t> word,
            std::size_t prefix)
      : pool_(pool), word_(std::move(word)), prefix_(prefix) {}

  bool holds(FRef f, std::size_t pos) {
    const auto key = std::make_pair(f, pos);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    // cut off recursion through cycles: assume "in progress" entries of
    // Until are false (least fixpoint) and of Release are true (greatest
    // fixpoint); implemented by seeding the memo before recursing.
    const FNode& n = pool_.at(f);
    bool seed = false;
    switch (n.kind) {
      case FKind::Until: seed = false; break;    // least fixpoint
      case FKind::Release: seed = true; break;   // greatest fixpoint
      default: break;
    }
    if (n.kind == FKind::Until || n.kind == FKind::Release)
      memo_[key] = seed;
    const bool v = eval(n, pos, f);
    memo_[key] = v;
    return v;
  }

 private:
  std::size_t next(std::size_t pos) const {
    const std::size_t np = pos + 1;
    if (np >= word_.size()) return prefix_;  // wrap into the cycle
    return np;
  }

  bool eval(const FNode& n, std::size_t pos, FRef self) {
    switch (n.kind) {
      case FKind::True: return true;
      case FKind::False: return false;
      case FKind::Prop: {
        const bool v = (word_[pos] >> n.prop) & 1;
        return n.negated ? !v : v;
      }
      case FKind::And: return holds(n.a, pos) && holds(n.b, pos);
      case FKind::Or: return holds(n.a, pos) || holds(n.b, pos);
      case FKind::Next: return holds(n.a, next(pos));
      case FKind::Until:
        // a U b = b || (a && X(a U b)), least fixpoint
        if (holds(n.b, pos)) return true;
        if (!holds(n.a, pos)) return false;
        return holds(self, next(pos));
      case FKind::Release:
        // a R b = b && (a || X(a R b)), greatest fixpoint
        if (!holds(n.b, pos)) return false;
        if (holds(n.a, pos)) return true;
        return holds(self, next(pos));
    }
    return false;
  }

  const FormulaPool& pool_;
  std::vector<std::uint32_t> word_;
  std::size_t prefix_;
  std::map<std::pair<FRef, std::size_t>, bool> memo_;
};

/// Fixpoint-correct evaluation: iterate until the memoized verdicts are
/// stable (the recursive seeding above can under/over-approximate when a
/// cycle is entered mid-evaluation, so re-run until convergence).
bool reference_holds(const FormulaPool& pool,
                     const std::vector<std::uint32_t>& word,
                     std::size_t prefix, FRef f) {
  // evaluate on the unrolled word: prefix + 2 * cycle is NOT sufficient in
  // general for nested untils evaluated naively, but the fixpoint-seeded
  // recursion above IS exact for lasso words: each (formula, position)
  // pair gets its least/greatest fixpoint value. One pass suffices.
  NaiveEval ev(pool, word, prefix);
  return ev.holds(f, 0);
}

// -- lasso system ----------------------------------------------------------------

/// Builds a machine whose single run is EXACTLY the lasso word, one
/// transition per word position: a global position counter advanced by a
/// single conditional-expression assignment (any guard or second
/// assignment would introduce stuttering states and break the
/// correspondence for X formulas). Propositions decode the word by
/// position.
struct LassoSystem {
  model::SystemSpec sys;
  std::vector<std::uint32_t> word;
  std::unique_ptr<kernel::Machine> m;

  LassoSystem(std::vector<std::uint32_t> w, std::size_t prefix)
      : word(std::move(w)) {
    using namespace model;
    const int pos_slot = sys.add_global("pos", 0);
    ProcBuilder b(sys, "Lasso");
    // next(pos) as one nested conditional expression
    expr::Ex next = b.k(static_cast<Value>(prefix));  // wrap target
    for (std::size_t i = 0; i + 1 < word.size(); ++i) {
      next = b.cond(b.g(GVar{pos_slot}) == b.k(static_cast<Value>(i)),
                    b.k(static_cast<Value>(i + 1)), next);
    }
    b.finish(seq(do_(alt(seq(assign(GVar{pos_slot}, next))))));
    sys.spawn("lasso", 0, {});
    m = std::make_unique<kernel::Machine>(sys);
  }

  PropertyContext props() {
    PropertyContext ctx;
    const expr::Ref pos = sys.exprs.global(0);
    for (int p = 0; p < kProps; ++p) {
      // prop p holds at position i iff bit p of word[i] is set:
      // OR over those positions of (pos == i)
      expr::Ref e = sys.exprs.konst(0);
      for (std::size_t i = 0; i < word.size(); ++i) {
        if ((word[i] >> p) & 1) {
          const expr::Ref cmp = sys.exprs.binary(
              expr::Op::Eq, pos, sys.exprs.konst(static_cast<Value>(i)));
          e = sys.exprs.binary(expr::Op::Or, e, cmp);
        }
      }
      ctx.add("p" + std::to_string(p), e);
    }
    return ctx;
  }
};

// -- the differential test ---------------------------------------------------------

class LtlDifferential : public ::testing::TestWithParam<int> {};

TEST_P(LtlDifferential, PipelineMatchesReferenceSemantics) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int round = 0; round < 20; ++round) {
    // random lasso word
    const std::size_t prefix = rng() % 3;
    const std::size_t cycle = 1 + rng() % 3;
    std::vector<std::uint32_t> word(prefix + cycle);
    for (auto& v : word) v = static_cast<std::uint32_t>(rng() % (1u << kProps));

    FormulaPool pool;
    const FRef f = random_formula(pool, rng, 3);

    const bool expected = reference_holds(pool, word, prefix, f);

    LassoSystem lasso(word, prefix);
    PropertyContext ctx = lasso.props();
    const LtlResult got = check_ltl(*lasso.m, pool, ctx, f, {});

    EXPECT_EQ(got.holds, expected)
        << "formula: " << pool.to_string(f, &ctx) << "\nprefix " << prefix
        << ", word:"
        << [&] {
             std::string s;
             for (auto v : word) s += " " + std::to_string(v);
             return s;
           }();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LtlDifferential, ::testing::Range(1, 9));

}  // namespace
}  // namespace pnp::ltl
