// Observability-layer tests: the JSONL ledger schema round-trip, TTY
// suppression of the heartbeat, recorder merge determinism across thread
// counts, and pnp::Session verdict equivalence with the legacy entry
// points on the fig13/fig14 bridge models.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bridge/bridge.h"
#include "explore/explorer.h"
#include "obs/obs.h"
#include "pml/parser.h"
#include "pnp/pnp.h"

namespace pnp {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const char* tag) {
  const fs::path p = fs::temp_directory_path() / tag;
  fs::remove_all(p);
  return p.string();
}

std::vector<std::string> ledger_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

// -- ledger schema -------------------------------------------------------------

TEST(Ledger, RoundTripValidates) {
  const std::string dir = fresh_dir("pnp_obs_ledger_roundtrip");
  obs::Observer ob;
  auto sink = std::make_shared<obs::LedgerSink>(dir);
  ob.add_sink(sink);

  ob.run_started("toy", "deadbeef00000000", {{"mode", "machine"}});
  const std::size_t ph = ob.begin_phase("exact", 1000);
  ob.recorder().add(obs::Counter::StatesStored, 42);
  ob.recorder().set_gauge(obs::Gauge::StoreBytes, 4096);
  ob.budget_warning("states", 800, 1000);
  ob.end_phase(ph, 42, 0.25, "MaxStates");
  obs::Event check;
  check.kind = obs::EventKind::ObligationFinished;
  check.label = "assertions";
  check.passed = false;
  check.states = 42;
  check.seconds = 0.25;
  check.attrs.emplace_back("kind", "safety");
  check.attrs.emplace_back("stage", "exact");
  ob.emit(check);
  ob.counterexample("assertions", "AssertFail");
  ob.run_finished(false, 0.5, {{"mode", "machine"}, {"trail", dir + "/t.txt"}});

  const std::vector<std::string> lines = ledger_lines(sink->path());
  ASSERT_EQ(lines.size(), 1u);
  std::string err;
  EXPECT_TRUE(obs::validate_ledger_record(lines[0], &err)) << err;
  // spot-check the documented fields land where the schema says
  EXPECT_NE(lines[0].find("\"schema\":\"pnp.run.v1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"subject\":\"toy\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"config\":\"deadbeef00000000\""),
            std::string::npos);
  EXPECT_NE(lines[0].find("\"verdict\":\"fail\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"mode\":\"machine\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"trail\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"states\":42"), std::string::npos);
}

TEST(Ledger, ValidatorRejectsMalformedRecords) {
  std::string err;
  EXPECT_FALSE(obs::validate_ledger_record("", &err));
  EXPECT_FALSE(obs::validate_ledger_record("not json", &err));
  EXPECT_FALSE(obs::validate_ledger_record("[1,2]", &err));
  EXPECT_FALSE(obs::validate_ledger_record("{}", &err));
  EXPECT_FALSE(obs::validate_ledger_record(
      R"({"schema":"pnp.run.v2","subject":"x","config":"c","verdict":"pass",)"
      R"("seconds":1,"states":1,"phases":[],"checks":[],"counters":{}})",
      &err))
      << "wrong schema tag must be rejected";
  EXPECT_FALSE(obs::validate_ledger_record(
      R"({"schema":"pnp.run.v1","subject":"x","config":"c","verdict":"pass",)"
      R"("seconds":"fast","states":1,"phases":[],"checks":[],"counters":{}})",
      &err))
      << "seconds must be a number";
  EXPECT_TRUE(obs::validate_ledger_record(
      R"({"schema":"pnp.run.v1","subject":"x","config":"c","verdict":"pass",)"
      R"("seconds":1.5,"states":1,"phases":[],"checks":[],"counters":{}})",
      &err))
      << err;
}

// -- heartbeat -----------------------------------------------------------------

TEST(Heartbeat, SuppressedWhenNotATty) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  obs::HeartbeatSink quiet(f);
  EXPECT_FALSE(quiet.active());
  obs::Event e;
  e.kind = obs::EventKind::Progress;
  e.states = 100;
  e.target = 1000;
  e.rate = 5000.0;
  quiet.on_event(e);
  std::fflush(f);
  EXPECT_EQ(std::ftell(f), 0) << "suppressed sink must not write";

  obs::HeartbeatSink forced(f, /*force=*/true);
  EXPECT_TRUE(forced.active());
  forced.on_event(e);
  std::fflush(f);
  EXPECT_GT(std::ftell(f), 0) << "forced sink must write";
  std::fclose(f);
}

// -- recorder merge determinism ------------------------------------------------

TEST(Recorder, MergeIsDeterministicAcrossThreadCounts) {
  bridge::BridgeConfig cfg;  // fig13, small instance
  ModelGenerator gen;
  Architecture arch = bridge::make_v1(cfg);
  const kernel::Machine m = gen.generate(arch, {.optimize_connectors = true});

  std::uint64_t stored1 = 0, transitions1 = 0;
  for (const int threads : {1, 2, 8}) {
    obs::Observer ob;
    explore::Options opt;
    opt.threads = threads;
    opt.obs = &ob;
    const explore::Result r = explore::explore(m, opt);
    ASSERT_TRUE(r.stats.complete);
    const std::uint64_t stored =
        ob.recorder().total(obs::Counter::StatesStored);
    const std::uint64_t transitions =
        ob.recorder().total(obs::Counter::Transitions);
    // merged counters must agree with the engine's own stats ...
    EXPECT_EQ(stored, r.stats.states_stored) << "threads=" << threads;
    EXPECT_EQ(transitions, r.stats.transitions) << "threads=" << threads;
    // ... and with every other thread count (exact runs are deterministic)
    if (threads == 1) {
      stored1 = stored;
      transitions1 = transitions;
    } else {
      EXPECT_EQ(stored, stored1) << "threads=" << threads;
      EXPECT_EQ(transitions, transitions1) << "threads=" << threads;
    }
  }
}

TEST(Recorder, StatsThroughputGuardsSubMillisecondRuns) {
  explore::Stats st;
  st.states_stored = 100;
  st.seconds = 0.0005;  // under 1 ms: rate would be meaningless noise
  EXPECT_EQ(st.states_per_second(), 0.0);
  st.seconds = 0.5;
  EXPECT_EQ(st.states_per_second(), 200.0);
}

// -- Session vs legacy entry points --------------------------------------------

RunConfig quiet_config() {
  RunConfig cfg;
  cfg.heartbeat = false;
  return cfg;
}

void expect_same_verdict(const kernel::Machine& m, const char* tag,
                         VerifyOptions legacy_opt, RunConfig cfg) {
  const SafetyOutcome legacy = check_safety(m, legacy_opt);
  Session session(cfg);
  const RunReport rep = session.verify_machine(
      m, tag, [](const std::string&) { return expr::kNoExpr; });
  ASSERT_EQ(rep.checks.size(), 1u);
  const RunCheck& c = rep.checks[0];
  EXPECT_EQ(c.passed, legacy.passed()) << tag;
  EXPECT_EQ(rep.passed, legacy.passed()) << tag;
  EXPECT_EQ(c.label, legacy.property_name) << tag;
  EXPECT_EQ(c.states_stored, legacy.result.stats.states_stored) << tag;
  EXPECT_EQ(c.stage, legacy.stages.back().name) << tag;
  EXPECT_EQ(rep.checks[0].detail.substr(0, rep.checks[0].detail.find('\n')),
            legacy.report().substr(0, legacy.report().find('\n')))
      << tag << ": verdict line must be byte-identical";
}

TEST(Session, VerdictsMatchLegacyOnFig13) {
  bridge::BridgeConfig cfg;
  ModelGenerator gen;
  Architecture arch = bridge::make_v1(cfg);
  const kernel::Machine m = gen.generate(arch, {.optimize_connectors = true});
  expect_same_verdict(m, "fig13", VerifyOptions{}, quiet_config());
}

TEST(Session, VerdictsMatchLegacyOnFig14Bounded) {
  bridge::BridgeConfig cfg;
  cfg.enter_queue_capacity = 1;
  ModelGenerator gen;
  Architecture arch = bridge::make_v2(cfg);
  const kernel::Machine m = gen.generate(arch, {.optimize_connectors = true});
  // v2 is beyond exhaustive search at test time: bound both sides the same
  // way and compare the truncated (still deterministic) verdicts.
  VerifyOptions lopt;
  lopt.max_states = 50'000;
  lopt.degrade = false;
  RunConfig cfg2 = quiet_config();
  cfg2.max_states = 50'000;
  cfg2.degrade = false;
  expect_same_verdict(m, "fig14", lopt, cfg2);
}

// -- Session end-to-end: ledger + trail files ----------------------------------

TEST(Session, WritesValidLedgerAndTrailOnFailure) {
  // A model with a real assertion violation, so the run fails and a trail
  // file is written next to the ledger.
  model::SystemSpec sys = pml::parse(R"(
    byte x;
    active proctype Bump() {
      x = x + 1;
      assert(x == 2)
    }
  )");
  kernel::Machine m(sys);
  RunConfig cfg = quiet_config();
  cfg.ledger_dir = fresh_dir("pnp_obs_session_ledger");
  Session session(cfg);
  model::SystemSpec* sp = &sys;
  const RunReport rep = session.verify_machine(
      m, "bump.pml",
      [sp](const std::string& t) { return pml::parse_global_expr(*sp, t); });
  EXPECT_FALSE(rep.passed);
  ASSERT_FALSE(rep.ledger_path.empty());
  ASSERT_FALSE(rep.trail_path.empty());
  EXPECT_TRUE(fs::exists(rep.trail_path));
  std::ifstream trail(rep.trail_path);
  std::string trail_text((std::istreambuf_iterator<char>(trail)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(trail_text.find("bump.pml"), std::string::npos);
  EXPECT_NE(trail_text.find("counterexample"), std::string::npos);

  const std::vector<std::string> lines = ledger_lines(rep.ledger_path);
  ASSERT_EQ(lines.size(), 1u);
  std::string err;
  EXPECT_TRUE(obs::validate_ledger_record(lines[0], &err)) << err;
  EXPECT_NE(lines[0].find("\"verdict\":\"fail\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"trail\":"), std::string::npos);

  // a second run on the same session appends a second valid record
  const RunReport rep2 = session.verify_machine(
      m, "bump.pml",
      [sp](const std::string& t) { return pml::parse_global_expr(*sp, t); });
  EXPECT_FALSE(rep2.passed);
  const std::vector<std::string> lines2 = ledger_lines(rep.ledger_path);
  ASSERT_EQ(lines2.size(), 2u);
  EXPECT_TRUE(obs::validate_ledger_record(lines2[1], &err)) << err;
}

TEST(Session, ConfigDigestCoversVerdictRelevantFieldsOnly) {
  RunConfig a;
  RunConfig b;
  EXPECT_EQ(a.digest(), b.digest());
  b.threads = 8;  // thread count cannot change a verdict
  b.ledger_dir = "/tmp/somewhere";
  b.heartbeat = false;
  EXPECT_EQ(a.digest(), b.digest());
  b.max_states = 123;  // budgets can
  EXPECT_NE(a.digest(), b.digest());
  RunConfig c;
  c.ltl.push_back("F done");
  EXPECT_NE(a.digest(), c.digest());
}

TEST(Session, ExecBudgetAliasesAreTheSameField) {
  // satellite #1: the historical spellings are now the inherited members
  VerifyOptions v;
  v.max_states = 77;
  EXPECT_EQ(static_cast<ExecBudget&>(v).max_states, 77u);
  ltl::CheckOptions l;
  l.deadline_seconds = 1.5;
  EXPECT_EQ(static_cast<ExecBudget&>(l).deadline_seconds, 1.5);
  RunConfig r;
  r.memory_budget_bytes = 1024;
  EXPECT_EQ(r.verify_options().memory_budget_bytes, 1024u);
  EXPECT_EQ(r.ltl_options().memory_budget_bytes, 1024u);
  EXPECT_EQ(r.suite_options().verify.memory_budget_bytes, 1024u);
  EXPECT_EQ(r.resilience_options().verify.memory_budget_bytes, 1024u);
}

}  // namespace
}  // namespace pnp
