// Parallel-exploration determinism: the multi-threaded engines must return
// the same verdict as the sequential one at every thread count, and -- for
// complete exact runs -- the same reached-state count, across the deadlock,
// invariant, and LTL suites. Trail contents may differ; verdicts may not.
#include <gtest/gtest.h>

#include "adl/adl.h"
#include "explore/explorer.h"
#include "kernel/machine.h"
#include "ltl/product.h"
#include "model/builder.h"
#include "pnp/pnp.h"

namespace pnp::explore {
namespace {

using namespace model;

const int kThreadCounts[] = {1, 2, 8};

/// Producer/consumer family with a tunable invariant: `slack` >= 0 makes the
/// bound hold, negative slack forces a violation partway through the run.
struct Flow {
  std::unique_ptr<SystemSpec> sys;
  expr::Ref invariant{expr::kNoExpr};

  kernel::Machine machine() const { return kernel::Machine(*sys); }
};

Flow make_flow(int workers, int per, int slack) {
  Flow f;
  f.sys = std::make_unique<SystemSpec>();
  SystemSpec& sys = *f.sys;
  const int ch = sys.add_channel("c", 2, 1);
  const int total = sys.add_global("total");
  for (int w = 0; w < workers; ++w) {
    ProcBuilder p(sys, "W" + std::to_string(w));
    const LVar i = p.local("i");
    const LVar scratch = p.local("s");
    p.finish(seq(do_(
        alt(seq(guard(p.l(i) < p.k(per)),
                assign(scratch, p.l(i) * p.k(3)),
                assign(scratch, p.l(scratch) + p.k(1)),
                send(p.c(Chan{ch}), {p.k(1)}),
                assign(i, p.l(i) + p.k(1)))),
        alt(seq(guard(p.l(i) == p.k(per)), break_())))));
    sys.spawn("w" + std::to_string(w), w, {});
  }
  ProcBuilder q(sys, "Collector");
  const LVar v = q.local("v");
  const LVar n = q.local("n");
  const int want = workers * per;
  q.finish(seq(do_(
      alt(seq(guard(q.l(n) < q.k(want)), recv(q.c(Chan{ch}), {bind(v)}),
              assign(GVar{total}, q.g(GVar{total}) + q.l(v)),
              assign(n, q.l(n) + q.k(1)))),
      alt(seq(guard(q.l(n) == q.k(want)), break_())))));
  sys.spawn("collector", workers, {});
  f.invariant = sys.exprs.binary(expr::Op::Le, sys.exprs.global(total),
                                 sys.exprs.konst(want + slack));
  return f;
}

/// A producer pushing `sent` messages through a capacity-1 channel to a
/// consumer that stops after `taken`: with taken < sent the producer blocks
/// forever mid-body -- a genuine multi-step deadlock.
std::unique_ptr<SystemSpec> make_pipeline(int sent, int taken) {
  auto sys = std::make_unique<SystemSpec>();
  const int ch = sys->add_channel("c", 1, 1);
  ProcBuilder p(*sys, "Producer");
  const LVar i = p.local("i");
  p.finish(seq(do_(
      alt(seq(guard(p.l(i) < p.k(sent)), send(p.c(Chan{ch}), {p.l(i)}),
              assign(i, p.l(i) + p.k(1)))),
      alt(seq(guard(p.l(i) == p.k(sent)), break_())))));
  sys->spawn("producer", 0, {});
  ProcBuilder q(*sys, "Consumer");
  const LVar v = q.local("v");
  const LVar n = q.local("n");
  q.finish(seq(do_(
      alt(seq(guard(q.l(n) < q.k(taken)), recv(q.c(Chan{ch}), {bind(v)}),
              assign(n, q.l(n) + q.k(1)))),
      alt(seq(guard(q.l(n) == q.k(taken)), break_())))));
  sys->spawn("consumer", 1, {});
  return sys;
}

Result explore_at(const kernel::Machine& m, Options opt, int threads) {
  opt.threads = threads;
  return explore(m, opt);
}

// -- invariant suite ----------------------------------------------------------

TEST(ParallelExact, InvariantVerdictAndCountsMatchAcrossThreadCounts) {
  for (const int slack : {0, -1}) {
    const Flow f = make_flow(3, 2, slack);
    const kernel::Machine m = f.machine();
    Options opt;
    opt.invariant = f.invariant;

    const Result seq = explore_at(m, opt, 1);
    EXPECT_EQ(seq.violation.has_value(), slack < 0);
    for (const int t : kThreadCounts) {
      const Result par = explore_at(m, opt, t);
      EXPECT_EQ(par.violation.has_value(), seq.violation.has_value())
          << "threads=" << t << " slack=" << slack;
      if (par.violation && seq.violation) {
        EXPECT_EQ(par.violation->kind, seq.violation->kind);
      }
      if (!seq.violation) {
        // complete exact runs must agree on the reached-state count
        EXPECT_TRUE(par.stats.complete);
        EXPECT_EQ(par.stats.states_stored, seq.stats.states_stored)
            << "threads=" << t;
      }
    }
  }
}

TEST(ParallelExact, PerWorkerCountersSumToMergedTotals) {
  const Flow f = make_flow(3, 2, 0);
  const kernel::Machine m = f.machine();
  Options opt;
  opt.invariant = f.invariant;
  const Result r = explore_at(m, opt, 4);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.stats.threads, 4);
  ASSERT_EQ(r.stats.workers.size(), 4u);
  std::uint64_t stored = 0, matched = 0, transitions = 0;
  for (const WorkerStats& w : r.stats.workers) {
    stored += w.states_stored;
    matched += w.states_matched;
    transitions += w.transitions;
  }
  // root is inserted by the seeder, not a worker
  EXPECT_EQ(stored + 1, r.stats.states_stored);
  EXPECT_EQ(matched, r.stats.states_matched);
  EXPECT_EQ(transitions, r.stats.transitions);
}

// -- deadlock suite -----------------------------------------------------------

TEST(ParallelExact, DeadlockVerdictMatchesAcrossThreadCounts) {
  // blocked producer -> deadlock; balanced pipeline -> clean termination
  for (const bool deadlocks : {true, false}) {
    // taken = sent - 2: the producer buffers one message into the cap-1
    // channel after the consumer stops, then blocks on the next forever.
    const auto sys = make_pipeline(3, deadlocks ? 1 : 3);
    const kernel::Machine m(*sys);
    Options opt;
    const Result seq = explore_at(m, opt, 1);
    ASSERT_EQ(seq.violation.has_value(), deadlocks);
    if (deadlocks) {
      EXPECT_EQ(seq.violation->kind, ViolationKind::Deadlock);
    }
    for (const int t : kThreadCounts) {
      const Result par = explore_at(m, opt, t);
      EXPECT_EQ(par.violation.has_value(), deadlocks) << "threads=" << t;
      if (deadlocks) {
        EXPECT_EQ(par.violation->kind, ViolationKind::Deadlock);
        EXPECT_FALSE(par.violation->trace.steps.empty());
        EXPECT_FALSE(par.violation->trace.final_state.empty());
      } else {
        EXPECT_EQ(par.stats.states_stored, seq.stats.states_stored);
      }
    }
  }
}

TEST(ParallelExact, CounterexampleTraceReplaysToViolation) {
  // The parallel trail is rebuilt from per-shard parent edges; replaying it
  // step by step from the initial state must reproduce a real path.
  const auto sys = make_pipeline(3, 1);
  const kernel::Machine m(*sys);
  Options opt;
  const Result r = explore_at(m, opt, 4);
  ASSERT_TRUE(r.violation.has_value());
  kernel::State s = m.initial();
  std::vector<kernel::Succ> succs;
  for (const trace::TraceStep& ts : r.violation->trace.steps) {
    succs.clear();
    m.successors(s, succs);
    bool advanced = false;
    for (kernel::Succ& succ : succs) {
      if (succ.second.pid == ts.step.pid && succ.second.trans == ts.step.trans &&
          succ.second.partner_pid == ts.step.partner_pid) {
        s = succ.first;
        advanced = true;
        break;
      }
    }
    ASSERT_TRUE(advanced) << "trace step not executable: " << ts.description;
  }
  // the final state of the trail is the deadlock state: no successors
  succs.clear();
  m.successors(s, succs);
  EXPECT_TRUE(succs.empty());
  EXPECT_FALSE(m.is_valid_end(s));
}

// -- end-invariant, BFS, POR, budgets -----------------------------------------

TEST(ParallelExact, EndInvariantAndBfsAgreeAcrossThreadCounts) {
  const Flow f = make_flow(2, 2, 0);
  const kernel::Machine m = f.machine();
  SystemSpec& sys = *f.sys;
  Options opt;
  opt.end_invariant = sys.exprs.binary(
      expr::Op::Eq, sys.exprs.global(0), sys.exprs.konst(4));
  const Result seq = explore_at(m, opt, 1);
  for (const int t : kThreadCounts) {
    for (const bool bfs : {false, true}) {
      Options o = opt;
      o.bfs = bfs;
      const Result r = explore_at(m, o, t);
      EXPECT_EQ(r.violation.has_value(), seq.violation.has_value())
          << "threads=" << t << " bfs=" << bfs;
      if (!seq.violation) {
        EXPECT_EQ(r.stats.states_stored, seq.stats.states_stored);
      }
    }
  }
}

TEST(ParallelExact, PorReducedCountsAreThreadCountInvariant) {
  const Flow f = make_flow(3, 2, 0);
  const kernel::Machine m = f.machine();
  Options opt;
  opt.invariant = f.invariant;
  opt.por = true;
  // The parallel engine uses the proviso-free (BFS-style) ample rule -- a
  // pure function of the state -- so all parallel runs agree with each
  // other and with sequential BFS+POR.
  Options bfs_por = opt;
  bfs_por.bfs = true;
  const Result reference = explore_at(m, bfs_por, 1);
  ASSERT_TRUE(reference.ok());
  for (const int t : {2, 8}) {
    const Result r = explore_at(m, opt, t);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.stats.states_stored, reference.stats.states_stored)
        << "threads=" << t;
  }
  // and POR still never grows the space
  Options full;
  full.invariant = f.invariant;
  const Result unreduced = explore_at(m, full, 4);
  EXPECT_LE(reference.stats.states_stored, unreduced.stats.states_stored);
}

TEST(ParallelExact, DeadlineTruncationReportsStructuredReason) {
  const Flow f = make_flow(3, 3, 0);
  const kernel::Machine m = f.machine();
  Options opt;
  opt.deadline_seconds = 1e-9;  // expires immediately
  const Result r = explore_at(m, opt, 2);
  EXPECT_FALSE(r.stats.complete);
  EXPECT_EQ(r.stats.truncation, TruncationReason::Deadline);
}

TEST(ParallelExact, MaxStatesTruncationIsReported) {
  const Flow f = make_flow(3, 2, 0);
  const kernel::Machine m = f.machine();
  Options opt;
  opt.max_states = 50;
  const Result r = explore_at(m, opt, 4);
  if (!r.violation) {
    EXPECT_FALSE(r.stats.complete);
    EXPECT_EQ(r.stats.truncation, TruncationReason::MaxStates);
  }
}

// -- swarm (bitstate) suite ---------------------------------------------------

TEST(Swarm, VerdictMatchesExactOnPassAndFail) {
  for (const int slack : {0, -1}) {
    const Flow f = make_flow(2, 2, slack);
    const kernel::Machine m = f.machine();
    Options opt;
    opt.invariant = f.invariant;
    Options swarm = opt;
    swarm.bitstate = true;
    swarm.bitstate_bytes = 1u << 22;  // roomy filter: collisions ~ 0
    for (const int t : {2, 4}) {
      const Result r = explore_at(m, swarm, t);
      EXPECT_EQ(r.violation.has_value(), slack < 0) << "threads=" << t;
      EXPECT_FALSE(r.stats.complete);
      EXPECT_EQ(r.stats.truncation, TruncationReason::BitstateApprox);
      EXPECT_EQ(r.stats.threads, t);
      EXPECT_EQ(r.stats.workers.size(), static_cast<std::size_t>(t));
    }
  }
}

TEST(Swarm, WorkersExploreIndependentlySeededSearches) {
  const Flow f = make_flow(2, 2, 0);
  const kernel::Machine m = f.machine();
  Options opt;
  opt.invariant = f.invariant;
  opt.bitstate = true;
  opt.bitstate_bytes = 1u << 22;
  const Result exact = explore_at(m, opt, 1);
  const Result swarm = explore_at(m, opt, 3);
  // every worker covers (approximately) the whole space on its own filter
  for (const WorkerStats& w : swarm.stats.workers)
    EXPECT_GE(w.states_stored, exact.stats.states_stored * 9 / 10);
  // merged totals are the per-filter sum
  std::uint64_t sum = 0;
  for (const WorkerStats& w : swarm.stats.workers) sum += w.states_stored;
  EXPECT_EQ(swarm.stats.states_stored, sum);
}

// -- LTL suite ----------------------------------------------------------------

TEST(ParallelLtl, VerdictMatchesAcrossThreadCounts) {
  const Flow f = make_flow(2, 2, 0);
  const kernel::Machine m = f.machine();
  ltl::PropertyContext props;
  props.add("bounded", f.invariant);
  props.add("over", f.sys->exprs.binary(expr::Op::Gt, f.sys->exprs.global(0),
                                        f.sys->exprs.konst(100)));
  for (const std::string& formula : {std::string("G bounded"),
                                     std::string("F over")}) {
    ltl::CheckOptions seq_opt;
    const ltl::LtlResult seq = ltl::check_ltl(m, props, formula, seq_opt);
    for (const int t : kThreadCounts) {
      ltl::CheckOptions opt;
      opt.threads = t;
      const ltl::LtlResult r = ltl::check_ltl(m, props, formula, opt);
      EXPECT_EQ(r.holds, seq.holds) << formula << " threads=" << t;
      EXPECT_EQ(r.violation.has_value(), seq.violation.has_value());
    }
  }
}

// -- verifier ladder + resilience stress --------------------------------------

TEST(ParallelVerifier, LadderDegradesToSwarmBitstate) {
  const Flow f = make_flow(3, 3, 0);
  const kernel::Machine m = f.machine();
  VerifyOptions opt;
  opt.threads = 2;
  opt.max_states = 200;  // force exact truncation
  opt.bitstate_bytes = 1u << 22;
  const SafetyOutcome out = check_safety(m, opt);
  ASSERT_TRUE(out.degraded());
  ASSERT_EQ(out.stages.size(), 2u);
  EXPECT_EQ(out.stages[0].name, "exact-parallel");
  EXPECT_EQ(out.stages[1].name, "swarm-bitstate");
  EXPECT_EQ(out.result.stats.threads, 2);
}

TEST(ParallelResilience, FaultSuiteStressUnderFourJobs) {
  // The counting receiver is vulnerable to duplication, the idempotent one
  // tolerates the full suite; concurrent variant verification (4 jobs, one
  // shared ModelGenerator) must reproduce exactly the sequential verdicts.
  const auto arch_text = [](const std::string& update) {
    return "architecture counter {\n"
           "  global received = 0;\n"
           "  component Sender {\n"
           "    behavior { out_data!7,0,0,0,0,0; out_sig?SEND_SUCC,_; }\n"
           "  }\n"
           "  component Receiver {\n"
           "    behavior {\n"
           "      byte v;\n"
           "      do\n"
           "      :: in_data!0,0,0,0,0,0; in_sig?RECV_SUCC,_;\n"
           "         in_data?v,_,_,_,_,_; " + update + "\n"
           "      od\n"
           "    }\n"
           "  }\n"
           "  connector Link : fifo(2) {\n"
           "    sender Sender.out via asyn_blocking;\n"
           "    receiver Receiver.in via blocking;\n"
           "  }\n"
           "}\n";
  };
  for (const bool idempotent : {true, false}) {
    Architecture arch = adl::parse_architecture(
        arch_text(idempotent ? "received = 1" : "received++"));
    const std::vector<FaultSpec> suite = default_fault_suite(arch);
    ASSERT_GE(suite.size(), 5u);

    ResilienceOptions sequential;
    sequential.invariant_text = "received <= 1";
    ResilienceOptions concurrent = sequential;
    concurrent.jobs = 4;

    const ResilienceReport seq = check_resilience(arch, suite, sequential);
    const ResilienceReport par = check_resilience(arch, suite, concurrent);

    ASSERT_EQ(par.faults.size(), seq.faults.size());
    EXPECT_TRUE(par.baseline_passed());
    EXPECT_EQ(par.baseline_passed(), seq.baseline_passed());
    EXPECT_EQ(par.all_tolerated(), seq.all_tolerated());
    // the counting receiver must flunk duplication either way
    if (!idempotent) {
      EXPECT_FALSE(par.all_tolerated());
    }
    for (std::size_t i = 0; i < seq.faults.size(); ++i) {
      EXPECT_EQ(par.faults[i].description, seq.faults[i].description);
      EXPECT_EQ(par.faults[i].tolerated(), seq.faults[i].tolerated())
          << par.faults[i].description;
    }
  }
}

}  // namespace
}  // namespace pnp::explore
