// Composition-pattern tests: RPC and publish/subscribe built from the
// message-passing building blocks, plus cross-checking random simulation
// against exhaustive exploration.
#include <gtest/gtest.h>

#include "pnp/pnp.h"

namespace pnp {
namespace {

using namespace model;

TEST(Patterns, RpcRoundTripVerifies) {
  Architecture arch("rpc");
  arch.add_global("done", 0);
  const int cli = arch.add_component("Client", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const LVar r = b.local("r");
    return seq(iface::send_msg(b, ctx.port("call"), b.k(21)),
               iface::recv_msg(b, ctx.port("reply"), r),
               assert_(b.l(r) == b.k(42), "server doubles"),
               assign(ctx.global("done"), b.k(1)), end_label());
  });
  const int srv = arch.add_component("Server", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const LVar v = b.local("v");
    return seq(do_(alt(seq(end_label(),
                           iface::recv_msg(b, ctx.port("rx"), v),
                           iface::send_msg(b, ctx.port("tx"), b.l(v) * b.k(2))))));
  });
  patterns::rpc(arch, "Compute", cli, "call", "reply", srv, "rx", "tx");

  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  EXPECT_TRUE(check_safety(m).passed());

  // Fairness-free phrasing: whenever the system quiesces, the call has
  // completed.
  EXPECT_TRUE(check_end_invariant(m, gen.gx("done") == gen.kx(1),
                                  "call completed")
                  .passed());

  gen.add_prop("done", gen.gx("done") == gen.kx(1));
  // Without fairness, the scheduler may spin the server's receive-port
  // retry loop forever: F done is correctly REFUTED (same as SPIN sans -f).
  EXPECT_FALSE(check_ltl_formula(m, gen.props(), "F done").passed());
  // WEAK fairness is still not enough on the faithful models: a port's
  // rendezvous with the channel process is enabled only while the channel
  // sits at its loop head, so the port is disabled infinitely often and
  // escapes the weak-fairness obligation (strong fairness would be needed).
  EXPECT_FALSE(check_ltl_formula(m, gen.props(), "F done",
                                 ltl::fair())
                  .passed());

  // The optimized connector substitution removes the channel process;
  // ports block on the native queue, whose availability does not blink --
  // now weak fairness suffices for the liveness property.
  const kernel::Machine mo = gen.generate(arch, {.optimize_connectors = true});
  EXPECT_GT(gen.last_stats().connectors_optimized, 0);
  EXPECT_TRUE(check_ltl_formula(mo, gen.props(), "F done",
                                ltl::fair())
                  .passed());
  EXPECT_TRUE(check_ltl_formula(mo, gen.props(), "F G done",
                                ltl::fair())
                  .passed());
}

TEST(Patterns, PubSubDeliversToEverySubscriberEventually) {
  Architecture arch("pubsub");
  arch.add_global("a", 0);
  arch.add_global("bdone", 0);
  const int pub = arch.add_component("Pub", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    return seq(iface::send_msg(b, ctx.port("out"), b.k(9)), end_label());
  });
  auto sub = [](const char* flag) {
    return [flag](ComponentContext& ctx) {
      ProcBuilder& b = ctx.builder();
      const LVar v = b.local("v");
      return seq(iface::recv_msg(b, ctx.port("in"), v),
                 assign(ctx.global(flag), b.k(1)), end_label());
    };
  };
  const int s1 = arch.add_component("A", sub("a"));
  const int s2 = arch.add_component("B", sub("bdone"));
  patterns::publish_subscribe(arch, "Bus", 2,
                              {{pub, "out", SendPortKind::AsynBlocking}},
                              {{s1, "in", RecvPortKind::Blocking, {}},
                               {s2, "in", RecvPortKind::Blocking, {}}});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  EXPECT_TRUE(check_safety(m).passed());
  const expr::Ex both =
      gen.gx("a") == gen.kx(1) && gen.gx("bdone") == gen.kx(1);
  // The robust fairness-free claim: every quiescent state has full delivery.
  EXPECT_TRUE(check_end_invariant(m, both, "both delivered").passed());
  gen.add_prop("both", both);
  // Liveness as LTL needs more than weak fairness here: the subscribers'
  // rendezvous with the event-pool process blinks (see RpcRoundTripVerifies),
  // so a weakly-fair starvation run exists and is correctly reported.
  EXPECT_FALSE(check_ltl_formula(m, gen.props(), "F both",
                                 ltl::fair())
                  .passed());
}

TEST(Patterns, PubSubSelectiveTopicIsolation) {
  // Two topics; each subscriber must only ever see its own topic's payload.
  Architecture arch("topics");
  const int p1 = arch.add_component("P1", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    iface::SendMeta m;
    m.tag = 1;
    return seq(iface::send_msg(b, ctx.port("out"), b.k(100), m), end_label());
  });
  const int p2 = arch.add_component("P2", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    iface::SendMeta m;
    m.tag = 2;
    return seq(iface::send_msg(b, ctx.port("out"), b.k(200), m), end_label());
  });
  auto topic_sub = [](Value topic, Value expect) {
    return [topic, expect](ComponentContext& ctx) {
      ProcBuilder& b = ctx.builder();
      const LVar v = b.local("v");
      iface::RecvMeta m;
      m.tag = topic;
      return seq(iface::recv_msg(b, ctx.port("in"), v, m),
                 assert_(b.l(v) == b.k(expect), "topic isolation"),
                 end_label());
    };
  };
  const int s1 = arch.add_component("S1", topic_sub(1, 100));
  const int s2 = arch.add_component("S2", topic_sub(2, 200));
  patterns::publish_subscribe(
      arch, "Bus", 4,
      {{p1, "out", SendPortKind::AsynBlocking},
       {p2, "out", SendPortKind::AsynBlocking}},
      {{s1, "in", RecvPortKind::Blocking, {.remove = true, .selective = true}},
       {s2, "in", RecvPortKind::Blocking, {.remove = true, .selective = true}}});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out = check_safety(m);
  EXPECT_TRUE(out.passed()) << out.report();
}

TEST(Patterns, SimulationNeverLeavesVerifiedStateSpace) {
  // Cross-check: every state visited by 50 random runs satisfies the
  // invariant that exhaustive exploration proved.
  Architecture arch("xcheck");
  arch.add_global("count", 0);
  const int s = arch.add_component("S", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const LVar i = b.local("i", 1);
    return seq(do_(alt(seq(guard(b.l(i) <= b.k(3)),
                           iface::send_msg(b, ctx.port("out"), b.l(i)),
                           assign(i, b.l(i) + b.k(1)))),
                   alt(seq(guard(b.l(i) > b.k(3)), break_()))),
               end_label());
  });
  const int r = arch.add_component("R", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const LVar j = b.local("j", 1);
    const LVar v = b.local("v");
    return seq(do_(alt(seq(guard(b.l(j) <= b.k(3)),
                           iface::recv_msg(b, ctx.port("in"), v),
                           assign(ctx.global("count"),
                                  ctx.g("count") + b.k(1)),
                           assign(j, b.l(j) + b.k(1)))),
                   alt(seq(guard(b.l(j) > b.k(3)), break_()))),
               end_label());
  });
  patterns::point_to_point(arch, s, "out", r, "in", "L",
                           SendPortKind::SynBlocking, RecvPortKind::Blocking,
                           {ChannelKind::Fifo, 2});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const expr::Ex inv = gen.gx("count") <= gen.kx(3);
  ASSERT_TRUE(check_invariant(m, inv, "count bounded").passed());

  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    sim::Simulator simu(m, seed);
    for (int step = 0; step < 200; ++step) {
      if (!simu.step_random()) break;
      ASSERT_NE(m.eval_global(inv.ref, simu.state()), 0)
          << "seed " << seed << " step " << step;
    }
  }
}

}  // namespace
}  // namespace pnp
