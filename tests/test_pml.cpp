// PML (Promela-subset) front-end tests: lexer diagnostics, parsing of every
// supported construct, semantic checks, and end-to-end verification of
// textual models -- including the paper's producer/consumer shape.
#include <gtest/gtest.h>

#include "explore/explorer.h"
#include "kernel/machine.h"
#include "ltl/product.h"
#include "pml/lexer.h"
#include "pml/parser.h"
#include "support/panic.h"

namespace pnp::pml {
namespace {

explore::Result verify(const std::string& src, explore::Options opt = {}) {
  model::SystemSpec sys = parse(src);
  kernel::Machine m(sys);
  return explore::explore(m, opt);
}

// -- lexer ------------------------------------------------------------------------

TEST(PmlLexer, TokenizesOperatorsAndComments) {
  const auto toks = lex("a!!1 ?? ?< -> :: /* x */ // y\n<=");
  std::vector<Tok> kinds;
  for (const auto& t : toks) kinds.push_back(t.kind);
  const std::vector<Tok> expect = {Tok::Ident,   Tok::DoubleBang, Tok::Number,
                                   Tok::DoubleQuery, Tok::QueryLess,
                                   Tok::Arrow,   Tok::DoubleColon, Tok::LessEq,
                                   Tok::End};
  EXPECT_EQ(kinds, expect);
}

TEST(PmlLexer, TracksLineAndColumn) {
  const auto toks = lex("a\n  b");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[1].col, 3);
}

TEST(PmlLexer, RejectsStrayCharacters) {
  EXPECT_THROW(lex("a $ b"), ModelError);
  EXPECT_THROW(lex("/* unterminated"), ModelError);
}

// -- parser: declarations -----------------------------------------------------------

TEST(PmlParse, MtypeChanGlobalsProctype) {
  model::SystemSpec sys = parse(R"(
    mtype = { PING, PONG };
    chan c = [2] of { mtype, byte };
    int counter = 5;
    bool flag;
    active proctype P() { skip }
  )");
  EXPECT_EQ(sys.mtypes.size(), 2u);
  EXPECT_EQ(sys.mtype_name(1), "PING");
  ASSERT_TRUE(sys.find_channel("c").has_value());
  EXPECT_EQ(sys.channels[0].capacity, 2);
  EXPECT_EQ(sys.channels[0].arity, 2);
  ASSERT_TRUE(sys.find_global("counter").has_value());
  EXPECT_EQ(sys.globals[0].init, 5);
  EXPECT_EQ(sys.processes.size(), 1u);
}

TEST(PmlParse, ActiveCountSpawnsInstances) {
  model::SystemSpec sys = parse("active [3] proctype W() { skip }");
  EXPECT_EQ(sys.processes.size(), 3u);
  EXPECT_EQ(sys.processes[1].name, "W1");
}

TEST(PmlParse, InitRunSpawnsWithArguments) {
  model::SystemSpec sys = parse(R"(
    chan q = [1] of { byte };
    proctype P(chan c; byte x) { c!x }
    init { run P(q, 7); run P(q, 8) }
  )");
  ASSERT_EQ(sys.processes.size(), 2u);
  EXPECT_EQ(sys.processes[0].args, (std::vector<model::Value>{0, 7}));
  EXPECT_EQ(sys.processes[1].args, (std::vector<model::Value>{0, 8}));
}

TEST(PmlParse, RejectsUnknownIdentifier) {
  EXPECT_THROW(parse("active proctype P() { x = 1 }"), ModelError);
}

TEST(PmlParse, RejectsActiveProctypeWithParams) {
  EXPECT_THROW(parse("active proctype P(byte x) { skip }"), ModelError);
}

TEST(PmlParse, RejectsGoto) {
  EXPECT_THROW(parse("active proctype P() { goto done }"), ModelError);
}

// -- end-to-end: executable semantics ------------------------------------------------

TEST(PmlRun, ProducerConsumerVerifies) {
  const auto r = verify(R"(
    chan box = [2] of { byte };
    byte received;
    active proctype Producer() {
      byte i = 1;
      do
      :: i <= 3 -> box!i; i++
      :: i > 3 -> break
      od
    }
    active proctype Consumer() {
      byte j = 1; byte v;
      do
      :: j <= 3 -> box?v; assert(v == j); received = v; j++
      :: j > 3 -> break
      od
    }
  )");
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
  EXPECT_TRUE(r.stats.complete);
}

TEST(PmlRun, AssertionViolationIsFound) {
  const auto r = verify(R"(
    byte x;
    active proctype P() { x = 3; assert(x == 4) }
  )");
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, explore::ViolationKind::AssertFailed);
}

TEST(PmlRun, RendezvousAndMtypeMatching) {
  const auto r = verify(R"(
    mtype = { REQ, ACK };
    chan c = [0] of { mtype, byte };
    byte got;
    active proctype Client() { c!REQ,42 }
    active proctype Server() {
      byte v;
      c?REQ,v;      /* mtype constant matches, v binds */
      got = v;
      assert(got == 42)
    }
  )");
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(PmlRun, EndLabelAcceptsIdleServer) {
  const auto r = verify(R"(
    chan c = [1] of { byte };
    active proctype Server() {
      byte v;
      end: do
      :: c?v
      od
    }
    active proctype Client() { c!5 }
  )");
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(PmlRun, DeadlockDetectedWithoutEndLabel) {
  const auto r = verify(R"(
    chan c = [1] of { byte };
    active proctype Server() { byte v; do :: c?v od }
    active proctype Client() { c!5 }
  )");
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, explore::ViolationKind::Deadlock);
}

TEST(PmlRun, ElseBranchAndIncrementDecrement) {
  const auto r = verify(R"(
    chan c = [1] of { byte };
    byte hits;
    active proctype P() {
      byte v;
      if
      :: c?v -> assert(false)   /* channel empty: must not fire */
      :: else -> hits++
      fi;
      hits--;
      assert(hits == 0)
    }
  )");
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(PmlRun, SortedSendAndRandomReceive) {
  const auto r = verify(R"(
    chan pq = [3] of { byte, byte };
    active proctype P() {
      byte v;
      pq!!2,20; pq!!1,10; pq!!3,30;
      pq?1,v; assert(v == 10);
      pq??3,v; assert(v == 30);   /* skips over the 2 at the head */
      pq?2,v; assert(v == 20)
    }
  )");
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(PmlRun, CopyReceiveKeepsMessage) {
  const auto r = verify(R"(
    chan c = [1] of { byte };
    active proctype P() {
      byte v;
      c!9;
      c?<v>; assert(v == 9);
      c?v; assert(v == 9)
    }
  )");
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(PmlRun, AtomicReducesInterleavings) {
  auto states = [](const char* src) {
    model::SystemSpec sys = parse(src);
    kernel::Machine m(sys);
    explore::Options opt;
    opt.want_trace = false;
    return explore::explore(m, opt).stats.states_stored;
  };
  const auto plain = states(R"(
    byte x;
    active [2] proctype P() { x = x + 1; x = x + 1 }
  )");
  const auto atomic = states(R"(
    byte x;
    active [2] proctype P() { atomic { x = x + 1; x = x + 1 } }
  )");
  EXPECT_LT(atomic, plain);
}

TEST(PmlRun, EvalMatch) {
  const auto r = verify(R"(
    chan c = [2] of { byte, byte };
    active proctype P() {
      byte want = 7; byte v;
      c!5,50; c!7,70;
      c??eval(want),v;
      assert(v == 70)
    }
  )");
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(PmlRun, GuardExpressionsBlock) {
  const auto r = verify(R"(
    byte x;
    active proctype A() { x == 1; x = 2 }  /* waits for B */
    active proctype B() { x = 1 }
  )");
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(PmlRun, LtlOverParsedModel) {
  model::SystemSpec sys = parse(R"(
    byte x;
    active proctype P() { x = 1; x = 2 }
  )");
  kernel::Machine m(sys);
  ltl::PropertyContext props;
  props.add("x2", parse_global_expr(sys, "x == 2"));
  props.add("x0", parse_global_expr(sys, "x == 0"));
  EXPECT_TRUE(ltl::check_ltl(m, props, "F x2").holds);
  EXPECT_TRUE(ltl::check_ltl(m, props, "x0 U (x2 || x0)").holds);
  EXPECT_FALSE(ltl::check_ltl(m, props, "G x0").holds);
}

TEST(PmlRun, GlobalExprParserSupportsChannelQueries) {
  model::SystemSpec sys = parse(R"(
    chan c = [2] of { byte };
    active proctype P() { c!1 }
  )");
  const expr::Ref e = parse_global_expr(sys, "len(c) <= 2 && !full(c) || empty(c)");
  kernel::Machine m(sys);
  EXPECT_EQ(m.eval_global(e, m.initial()), 1);
}

}  // namespace
}  // namespace pnp::pml

// -- the shipped example models parse and verify -----------------------------------

#include <fstream>
#include <sstream>

namespace pnp::pml {
namespace {

std::string read_model(const std::string& name) {
  for (const char* prefix : {"examples/models/", "../examples/models/",
                             "../../examples/models/"}) {
    std::ifstream in(prefix + name);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      return ss.str();
    }
  }
  ADD_FAILURE() << "cannot locate example model " << name
                << " (run ctest from the build or repo root)";
  return "";
}

TEST(PmlModels, PaperBlocksCompositionVerifies) {
  const std::string src = read_model("paper_blocks.pml");
  if (src.empty()) return;
  model::SystemSpec sys = parse(src);
  EXPECT_EQ(sys.processes.size(), 5u);  // 2 components, 2 ports, 1 channel
  kernel::Machine m(sys);
  explore::Options opt;
  opt.end_invariant = parse_global_expr(sys, "delivered == 2");
  opt.end_invariant_name = "both messages delivered";
  const auto r = explore::explore(m, opt);
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
  EXPECT_TRUE(r.stats.complete);
}

TEST(PmlModels, ProducerConsumerVerifies) {
  const std::string src = read_model("producer_consumer.pml");
  if (src.empty()) return;
  model::SystemSpec sys = parse(src);
  kernel::Machine m(sys);
  explore::Options opt;
  opt.invariant = parse_global_expr(sys, "received <= 3");
  const auto r = explore::explore(m, opt);
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(PmlModels, FlawedMutexIsCaught) {
  const std::string src = read_model("mutex_flawed.pml");
  if (src.empty()) return;
  model::SystemSpec sys = parse(src);
  kernel::Machine m(sys);
  explore::Options opt;
  opt.invariant = parse_global_expr(sys, "critical <= 1");
  const auto r = explore::explore(m, opt);
  ASSERT_TRUE(r.violation.has_value());
}

TEST(PmlModels, ClientServerLivenessUnderFairness) {
  const std::string src = read_model("client_server.pml");
  if (src.empty()) return;
  model::SystemSpec sys = parse(src);
  kernel::Machine m(sys);
  EXPECT_TRUE(explore::explore(m, {}).ok());
  ltl::PropertyContext props;
  props.add("served", parse_global_expr(sys, "served == 2"));
  ltl::CheckOptions fair;
  fair.weak_fairness = true;
  EXPECT_TRUE(ltl::check_ltl(m, props, "F served", fair).holds);
}

}  // namespace
}  // namespace pnp::pml

// -- additional construct & diagnostic coverage ------------------------------------

namespace pnp::pml {
namespace {

TEST(PmlParse, OperatorPrecedence) {
  model::SystemSpec sys = parse(R"(
    byte ok;
    active proctype P() {
      /* 2+3*4 == 14, !(0) == 1, 1+1 < 3 && 4/2 == 2 */
      assert(2 + 3 * 4 == 14);
      assert(!false);
      assert(1 + 1 < 3 && 4 / 2 == 2);
      assert(10 % 4 == 2);
      assert(-3 + 5 == 2);
      ok = 1
    }
  )");
  kernel::Machine m(sys);
  EXPECT_TRUE(explore::explore(m, {}).ok());
}

TEST(PmlParse, NestedSelectionsAndBreak) {
  const auto r = verify(R"(
    byte phase;
    active proctype P() {
      do
      :: phase == 0 ->
         if
         :: true -> phase = 1
         fi
      :: phase == 1 ->
         do
         :: phase == 1 -> phase = 2
         :: phase == 2 -> break      /* inner break */
         od;
         phase = 3
      :: phase == 3 -> break          /* outer break */
      od;
      assert(phase == 3)
    }
  )");
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(PmlParse, AtomicWithBreakInsideDo) {
  const auto r = verify(R"(
    byte n;
    active proctype P() {
      do
      :: n < 2 -> atomic { n = n + 1; skip }
      :: n == 2 -> break
      od;
      assert(n == 2)
    }
  )");
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(PmlParse, DStepIsAtomic) {
  model::SystemSpec sys = parse(R"(
    byte x;
    active [2] proctype P() { d_step { x = x + 1; x = x + 1 } }
  )");
  kernel::Machine m(sys);
  explore::Options opt;
  opt.want_trace = false;
  const auto atomic_states = explore::explore(m, opt).stats.states_stored;
  model::SystemSpec sys2 = parse(R"(
    byte x;
    active [2] proctype P() { x = x + 1; x = x + 1 }
  )");
  kernel::Machine m2(sys2);
  const auto plain_states = explore::explore(m2, opt).stats.states_stored;
  EXPECT_LT(atomic_states, plain_states);
}

TEST(PmlParse, MultipleDeclaratorsAndInitializers) {
  model::SystemSpec sys = parse(R"(
    mtype = { A, B };
    int x = 3, y = -2, z;
    bool f = true, g = false;
    mtype tag = B;
    active proctype P() { skip }
  )");
  EXPECT_EQ(sys.globals[0].init, 3);
  EXPECT_EQ(sys.globals[1].init, -2);
  EXPECT_EQ(sys.globals[2].init, 0);
  EXPECT_EQ(sys.globals[3].init, 1);
  EXPECT_EQ(sys.globals[4].init, 0);
  EXPECT_EQ(sys.globals[5].init, 2);  // mtype B = 2
}

TEST(PmlParse, ErrorsCarryLineAndColumn) {
  try {
    parse("byte x;\n\nactive proctype P() { y = 1 }");
    FAIL() << "expected ModelError";
  } catch (const ModelError& e) {
    EXPECT_NE(std::string(e.what()).find("3:"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("cannot assign to 'y'"),
              std::string::npos)
        << e.what();
  }
}

TEST(PmlParse, ChannelQueriesInGuards) {
  const auto r = verify(R"(
    chan c = [2] of { byte };
    active proctype P() {
      assert(empty(c) && nfull(c) && len(c) == 0);
      c!1;
      assert(nempty(c) && len(c) == 1 && !full(c));
      c!2;
      assert(full(c))
    }
  )");
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(PmlParse, SelfPidDistinguishesInstances) {
  const auto r = verify(R"(
    chan c = [2] of { byte };
    byte sum;
    active [2] proctype W() { c!_pid }
    active proctype Collector() {
      byte a; byte b;
      c?a; c?b;
      sum = a + b;
      assert(sum == 1)   /* pids 0 and 1 */
    }
  )");
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

TEST(PmlParse, ElseOnlyBranchInDo) {
  const auto r = verify(R"(
    chan c = [1] of { byte };
    byte polls;
    active proctype P() {
      byte v;
      do
      :: c?v -> break
      :: else ->
         polls = 1;
         c!7          /* make the receive possible next time around */
      od;
      assert(v == 7 && polls == 1)
    }
  )");
  EXPECT_TRUE(r.ok()) << (r.violation ? r.violation->message : "");
}

}  // namespace
}  // namespace pnp::pml
