// End-to-end smoke tests of the PnP layer: one sender, one receiver, one
// connector; verify across connector variants without touching the
// components (paper Fig. 2), and check the reuse accounting.
#include <gtest/gtest.h>

#include "pnp/pnp.h"

namespace pnp {
namespace {

using namespace model;

/// Sender: transmits kMsgs messages (data = 1..kMsgs), then stops.
constexpr int kMsgs = 2;

ComponentModelFn sender_model() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint out = ctx.port("out");
    const LVar i = b.local("i", 1);
    return seq(
        do_(alt(seq(guard(b.l(i) <= b.k(kMsgs)),
                    model::concat(iface::send_msg(b, out, b.l(i)),
                                  seq(assign(i, b.l(i) + b.k(1)))))),
            alt(seq(guard(b.l(i) > b.k(kMsgs)), break_()))),
        end_label());
  };
}

/// Receiver: consumes kMsgs messages and records the last one in a global.
ComponentModelFn receiver_model() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint in = ctx.port("in");
    const GVar last = ctx.global("last_received");
    const LVar j = b.local("j", 1);
    const LVar v = b.local("v");
    return seq(
        do_(alt(seq(guard(b.l(j) <= b.k(kMsgs)),
                    model::concat(
                        iface::recv_msg(b, in, v),
                        seq(assert_(b.l(v) == b.l(j), "messages arrive in order"),
                            assign(last, b.l(v)),
                            assign(j, b.l(j) + b.k(1)))))),
            alt(seq(guard(b.l(j) > b.k(kMsgs)), break_()))),
        end_label());
  };
}

Architecture make_p2p(SendPortKind sk, RecvPortKind rk, ChannelSpec cs) {
  Architecture arch("p2p");
  arch.add_global("last_received", 0);
  const int s = arch.add_component("Sender", sender_model());
  const int r = arch.add_component("Receiver", receiver_model());
  patterns::point_to_point(arch, s, "out", r, "in", "Link", sk, rk, cs);
  return arch;
}

TEST(PnpBasic, Fig2aAsynchronousSingleSlotVerifies) {
  Architecture arch = make_p2p(SendPortKind::AsynBlocking,
                               RecvPortKind::Blocking,
                               {ChannelKind::SingleSlot, 1});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out = check_safety(m);
  EXPECT_TRUE(out.passed()) << out.report();
}

TEST(PnpBasic, Fig2bSynchronousSingleSlotVerifies) {
  Architecture arch = make_p2p(SendPortKind::SynBlocking,
                               RecvPortKind::Blocking,
                               {ChannelKind::SingleSlot, 1});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out = check_safety(m);
  EXPECT_TRUE(out.passed()) << out.report();
}

TEST(PnpBasic, Fig2cAsynchronousFifo5Verifies) {
  Architecture arch = make_p2p(SendPortKind::AsynBlocking,
                               RecvPortKind::Blocking,
                               {ChannelKind::Fifo, 5});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out = check_safety(m);
  EXPECT_TRUE(out.passed()) << out.report();
}

TEST(PnpBasic, PortSwapReusesComponentModels) {
  Architecture arch = make_p2p(SendPortKind::AsynBlocking,
                               RecvPortKind::Blocking,
                               {ChannelKind::SingleSlot, 1});
  ModelGenerator gen;
  (void)gen.generate(arch);
  EXPECT_EQ(gen.last_stats().component_models_built, 2);
  EXPECT_EQ(gen.last_stats().component_models_reused, 0);

  // Plug-and-play: swap the send port; components must be reused.
  arch.set_send_port(arch.find_component("Sender"), "out",
                     SendPortKind::SynBlocking);
  const kernel::Machine m2 = gen.generate(arch);
  EXPECT_EQ(gen.last_stats().component_models_built, 0);
  EXPECT_EQ(gen.last_stats().component_models_reused, 2);
  const SafetyOutcome out = check_safety(m2);
  EXPECT_TRUE(out.passed()) << out.report();

  // Swap the channel as well: still no component rebuilds.
  arch.set_channel(arch.find_connector("Link"), {ChannelKind::Fifo, 3});
  const kernel::Machine m3 = gen.generate(arch);
  EXPECT_EQ(gen.last_stats().component_models_built, 0);
  EXPECT_EQ(gen.last_stats().component_models_reused, 2);
  const SafetyOutcome out3 = check_safety(m3);
  EXPECT_TRUE(out3.passed()) << out3.report();
}

TEST(PnpBasic, InvariantSeesComponentGlobal) {
  Architecture arch = make_p2p(SendPortKind::SynBlocking,
                               RecvPortKind::Blocking,
                               {ChannelKind::SingleSlot, 1});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  // last_received only ever holds 0..kMsgs
  const SafetyOutcome out = check_invariant(
      m, gen.gx("last_received") <= gen.kx(kMsgs), "last_received bounded");
  EXPECT_TRUE(out.passed()) << out.report();

  // ... and a deliberately false invariant is caught with a trace.
  const SafetyOutcome bad = check_invariant(
      m, gen.gx("last_received") < gen.kx(kMsgs), "too tight");
  EXPECT_FALSE(bad.passed());
  EXPECT_FALSE(bad.result.violation->trace.empty());
}

}  // namespace
}  // namespace pnp
