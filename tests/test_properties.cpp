// Property-style sweeps (parameterized gtest):
//  * every verified-deadlock-free system ends random simulation only in
//    valid end states, for many seeds;
//  * state-space size is monotone in buffer capacity and message count;
//  * generation is deterministic (same architecture -> same model);
//  * livelock detection via the progress-toggle idiom and LTL.
#include <gtest/gtest.h>

#include "pnp/pnp.h"

namespace pnp {
namespace {

using namespace model;

ComponentModelFn sender_n(int n) {
  return [n](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const LVar i = b.local("i", 1);
    return seq(do_(alt(seq(guard(b.l(i) <= b.k(n)),
                           iface::send_msg(b, ctx.port("out"), b.l(i)),
                           assign(i, b.l(i) + b.k(1)))),
                   alt(seq(guard(b.l(i) > b.k(n)), break_()))),
               end_label());
  };
}

ComponentModelFn receiver_n(int n) {
  return [n](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const LVar j = b.local("j", 1);
    const LVar v = b.local("v");
    return seq(do_(alt(seq(guard(b.l(j) <= b.k(n)),
                           iface::recv_msg(b, ctx.port("in"), v),
                           assign(j, b.l(j) + b.k(1)))),
                   alt(seq(guard(b.l(j) > b.k(n)), break_()))),
               end_label());
  };
}

Architecture p2p_n(int msgs, ChannelSpec cs) {
  Architecture arch("sweep");
  const int s = arch.add_component("S", sender_n(msgs));
  const int r = arch.add_component("R", receiver_n(msgs));
  patterns::point_to_point(arch, s, "out", r, "in", "L",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           cs);
  return arch;
}

// -- simulation terminates only in states the verifier accepts ------------------

class SimEndStates : public ::testing::TestWithParam<int> {};

TEST_P(SimEndStates, RandomRunsEndInValidEndStates) {
  Architecture arch = p2p_n(3, {ChannelKind::Fifo, 2});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  ASSERT_TRUE(check_safety(m).passed());

  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  sim::Simulator s(m, seed);
  // run to quiescence (the system terminates: components stop after 3 msgs)
  while (s.step_random()) {
    ASSERT_LT(s.history().size(), 100'000u) << "runaway simulation";
  }
  EXPECT_TRUE(m.is_valid_end(s.state()))
      << "seed " << seed << " ended in an invalid state:\n"
      << m.format_state(s.state());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimEndStates, ::testing::Range(1, 26));

// -- monotonicity of the state space ---------------------------------------------

struct SweepPoint {
  int msgs;
  int cap;
};

class StateGrowth : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(StateGrowth, MoreCapacityOrMessagesNeverShrinksTheSpace) {
  const SweepPoint p = GetParam();
  auto states_of = [](int msgs, int cap) {
    Architecture arch = p2p_n(msgs, {ChannelKind::Fifo, cap});
    ModelGenerator gen;
    const kernel::Machine m = gen.generate(arch);
    explore::Options opt;
    opt.want_trace = false;
    const auto r = explore::explore(m, opt);
    EXPECT_TRUE(r.ok());
    return r.stats.states_stored;
  };
  const std::uint64_t base = states_of(p.msgs, p.cap);
  EXPECT_LE(base, states_of(p.msgs + 1, p.cap));
  EXPECT_LE(base, states_of(p.msgs, p.cap + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Points, StateGrowth,
    ::testing::Values(SweepPoint{1, 1}, SweepPoint{2, 1}, SweepPoint{2, 2},
                      SweepPoint{3, 2}),
    [](const ::testing::TestParamInfo<SweepPoint>& i) {
      return "m" + std::to_string(i.param.msgs) + "c" +
             std::to_string(i.param.cap);
    });

// -- deterministic generation -----------------------------------------------------

TEST(Properties, GenerationIsDeterministic) {
  auto build = [] {
    Architecture arch = p2p_n(2, {ChannelKind::Fifo, 2});
    ModelGenerator gen;
    const kernel::Machine m = gen.generate(arch);
    return kernel::encode_key(m.initial());
  };
  EXPECT_EQ(build(), build());
}

TEST(Properties, ExplorationIsDeterministic) {
  Architecture arch = p2p_n(2, {ChannelKind::Fifo, 2});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const auto r1 = explore::explore(m, {});
  const auto r2 = explore::explore(m, {});
  EXPECT_EQ(r1.stats.states_stored, r2.stats.states_stored);
  EXPECT_EQ(r1.stats.transitions, r2.stats.transitions);
}

// -- livelock detection via the progress-toggle idiom -----------------------------

TEST(Properties, ProgressToggleExposesLivelock) {
  // A consumer that polls a channel that will never receive a second
  // message: the poll loop cycles forever without progress. The toggle
  // idiom (flip a bit on every real delivery) plus LTL "G F (bit flips)"
  // -- expressed as GF p0 && GF p1 -- detects the livelock.
  Architecture arch("livelock");
  arch.add_global("bit", 0);
  const int s = arch.add_component("S", sender_n(1));
  const int r = arch.add_component("R", [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const LVar v = b.local("v");
    const LVar st = b.local("st");
    iface::RecvMeta meta;
    meta.status_out = &st;
    return seq(do_(alt(seq(
        end_label(), iface::recv_msg(b, ctx.port("in"), v, meta),
        if_(alt(seq(guard(b.l(st) == b.k(RECV_SUCC)),
                    assign(ctx.global("bit"),
                           b.k(1) - ctx.g("bit")))),  // progress: toggle
            alt_else(seq(skip())))))));
  });
  patterns::point_to_point(arch, s, "out", r, "in", "L",
                           SendPortKind::AsynBlocking,
                           RecvPortKind::Nonblocking,
                           {ChannelKind::SingleSlot, 1});
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  gen.add_prop("bit0", gen.gx("bit") == gen.kx(0));
  gen.add_prop("bit1", gen.gx("bit") == gen.kx(1));
  // only one message is ever delivered: after that the bit freezes, so the
  // "infinitely often both values" liveness property fails = livelock found
  const LtlOutcome out =
      check_ltl_formula(m, gen.props(), "(G F bit0) && (G F bit1)");
  EXPECT_FALSE(out.passed());
  ASSERT_TRUE(out.result.violation.has_value());
  EXPECT_FALSE(out.result.violation->trace.empty());
}

}  // namespace
}  // namespace pnp

// -- optimized-connector substitution equivalence --------------------------------

namespace pnp {
namespace {

struct OptPoint {
  SendPortKind send;
  ChannelKind chan;
  int cap;
};

class OptimizedEquivalence : public ::testing::TestWithParam<OptPoint> {};

TEST_P(OptimizedEquivalence, SameVerdictFewerStates) {
  const OptPoint p = GetParam();
  auto run = [&](bool optimize) {
    Architecture arch("opteq");
    const int s = arch.add_component("S", sender_n(3));
    const int r = arch.add_component("R", receiver_n(3));
    patterns::point_to_point(arch, s, "out", r, "in", "L", p.send,
                             RecvPortKind::Blocking, {p.chan, p.cap});
    ModelGenerator gen;
    const kernel::Machine m =
        gen.generate(arch, {.optimize_connectors = optimize});
    if (optimize) {
      EXPECT_EQ(gen.last_stats().connectors_optimized, 1);
    }
    return check_safety(m);
  };
  const SafetyOutcome faithful = run(false);
  const SafetyOutcome optimized = run(true);
  EXPECT_EQ(faithful.passed(), optimized.passed());
  EXPECT_TRUE(optimized.passed()) << optimized.report();
  EXPECT_LT(optimized.result.stats.states_stored,
            faithful.result.stats.states_stored)
      << "the optimized substitution must shrink the state space";
}

INSTANTIATE_TEST_SUITE_P(
    Configs, OptimizedEquivalence,
    ::testing::Values(OptPoint{SendPortKind::SynBlocking,
                               ChannelKind::SingleSlot, 1},
                      OptPoint{SendPortKind::AsynBlocking,
                               ChannelKind::SingleSlot, 1},
                      OptPoint{SendPortKind::SynBlocking, ChannelKind::Fifo, 2},
                      OptPoint{SendPortKind::AsynBlocking, ChannelKind::Fifo,
                               2},
                      OptPoint{SendPortKind::AsynBlocking,
                               ChannelKind::Priority, 2}),
    [](const ::testing::TestParamInfo<OptPoint>& i) {
      return std::string(to_string(i.param.send)) + "_" +
             to_string(i.param.chan) + std::to_string(i.param.cap);
    });

TEST(OptimizedEquivalence, IneligibleConnectorsAreLeftFaithful) {
  Architecture arch("noopt");
  const int s = arch.add_component("S", sender_n(2));
  const int r = arch.add_component("R", receiver_n(2));
  // nonblocking receiver -> not eligible
  patterns::point_to_point(arch, s, "out", r, "in", "L",
                           SendPortKind::SynBlocking, RecvPortKind::Nonblocking,
                           {ChannelKind::Fifo, 2});
  ModelGenerator gen;
  (void)gen.generate(arch, {.optimize_connectors = true});
  EXPECT_EQ(gen.last_stats().connectors_optimized, 0);
}

}  // namespace
}  // namespace pnp
