// Reduction subsystem tests: stable cache-key hashing (pinned digests),
// per-process LTS extraction, minimization soundness (minimized verdicts
// match unminimized ones exactly, with a measured state-count reduction),
// the content-addressed verification cache (repeat runs hit 100%, a
// connector swap dirties only its own slice), and the GenStats reuse
// accounting across a plug-and-play swap iteration.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "pnp/pnp.h"
#include "reduce/cache.h"
#include "reduce/lts.h"
#include "reduce/minimize.h"
#include "reduce/reduce.h"
#include "support/hash.h"

namespace pnp {
namespace {

using namespace model;

// -- stable hashing ------------------------------------------------------------
// These digests are the persisted cache-key format: they must be identical
// on every platform, compiler, and endianness. If this test ever needs
// updating, every persisted cache is invalid and reduce::kCacheFormatVersion
// must be bumped.

TEST(StableHash, PinnedDigests) {
  EXPECT_EQ(stable_hash64(""), 0xefd01f60ba992926ull);
  EXPECT_EQ(stable_hash64("pnp"), 0x0828b2bb83c8da48ull);
  EXPECT_EQ(stable_hash64("connector Link kind=fifo cap=2\n"),
            0x483f9a74090be8fbull);
  EXPECT_EQ(stable_hash64("port-protocol deadlock freedom v1"),
            0x32a30681906253c4ull);
}

TEST(StableHash, DigestFormatIsStable) {
  reduce::ObligationKey key;
  key.kind = "safety";
  key.slice_hash = 1;
  key.property_hash = 0xabc;
  key.options_hash = 0xefd01f60ba992926ull;
  EXPECT_EQ(key.digest(),
            "safety:0000000000000001-0000000000000abc-efd01f60ba992926");
}

// -- example architectures -----------------------------------------------------

// Test-sized instances of the examples/ designs: same structure and port
// configurations, fewer messages (the full examples are bench-sized).
constexpr Value kTopicTemp = 1;
constexpr Value kTopicPressure = 2;
constexpr int kEvents = 1;

ComponentModelFn sensor(Value topic) {
  return [topic](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint out = ctx.port("pub");
    const LVar i = b.local("i", 1);
    iface::SendMeta meta;
    meta.tag = topic;
    return seq(do_(alt(seq(guard(b.l(i) <= b.k(kEvents)),
                           iface::send_msg(b, out, b.l(i), meta),
                           assign(i, b.l(i) + b.k(1)))),
                   alt(seq(guard(b.l(i) > b.k(kEvents)), break_()))),
               end_label());
  };
}

ComponentModelFn logger(int expected) {
  return [expected](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint in = ctx.port("sub");
    const GVar seen = ctx.global("logged");
    const LVar v = b.local("v");
    const LVar st = b.local("st");
    iface::RecvMeta meta;
    meta.status_out = &st;
    return seq(
        do_(alt(seq(end_label(), guard(ctx.g("logged") < b.k(expected)),
                    iface::recv_msg(b, in, v, meta),
                    if_(alt(seq(guard(b.l(st) == b.k(RECV_SUCC)),
                                assign(seen, ctx.g("logged") + b.k(1)))),
                        alt_else(seq(skip()))))),
            alt(seq(guard(ctx.g("logged") >= b.k(expected)), break_()))),
        end_label());
  };
}

ComponentModelFn alarm() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint in = ctx.port("sub");
    const GVar fired = ctx.global("alarms");
    const LVar v = b.local("v");
    const LVar j = b.local("j", 1);
    iface::RecvMeta meta;
    meta.tag = kTopicPressure;
    return seq(do_(alt(seq(guard(b.l(j) <= b.k(kEvents)),
                           iface::recv_msg(b, in, v, meta),
                           assign(fired, ctx.g("alarms") + b.k(1)),
                           assign(j, b.l(j) + b.k(1)))),
                   alt(seq(guard(b.l(j) > b.k(kEvents)), break_()))),
               end_label());
  };
}

/// The examples/publish_subscribe.cpp design, verbatim.
Architecture pubsub() {
  Architecture arch("pubsub");
  arch.add_global("logged", 0);
  arch.add_global("alarms", 0);
  const int temp = arch.add_component("TempSensor", sensor(kTopicTemp));
  const int pres =
      arch.add_component("PressureSensor", sensor(kTopicPressure));
  const int log = arch.add_component("Logger", logger(2 * kEvents));
  const int alrm = arch.add_component("Alarm", alarm());
  patterns::publish_subscribe(
      arch, "Bus", /*queue_capacity=*/4,
      {{temp, "pub", SendPortKind::AsynBlocking},
       {pres, "pub", SendPortKind::AsynBlocking}},
      {{log, "sub", RecvPortKind::Nonblocking, {}},
       {alrm, "sub", RecvPortKind::Blocking,
        {.remove = true, .selective = true}}});
  return arch;
}

constexpr int kCalls = 1;

ComponentModelFn client(int first_arg, const char* done_global) {
  return [first_arg, done_global](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint call = ctx.port("call");
    const PortEndpoint reply = ctx.port("reply");
    const GVar done = ctx.global(done_global);
    const LVar i = b.local("i", 0);
    const LVar r = b.local("r");
    return seq(
        do_(alt(seq(guard(b.l(i) < b.k(kCalls)),
                    iface::send_msg(b, call, b.l(i) + b.k(first_arg)),
                    iface::recv_msg(b, reply, r),
                    assert_(b.l(r) == (b.l(i) + b.k(first_arg)) * b.k(2),
                            "server doubles its argument"),
                    assign(i, b.l(i) + b.k(1)))),
            alt(seq(guard(b.l(i) == b.k(kCalls)), break_()))),
        assign(done, b.k(1)), end_label());
  };
}

ComponentModelFn server() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const PortEndpoint rx = ctx.port("rx");
    const PortEndpoint tx0 = ctx.port("tx0");
    const PortEndpoint tx1 = ctx.port("tx1");
    const LVar v = b.local("v");
    return seq(do_(alt(seq(
        end_label(), iface::recv_msg(b, rx, v),
        if_(alt(seq(guard(b.l(v) < b.k(100)),
                    iface::send_msg(b, tx0, b.l(v) * b.k(2)))),
            alt_else(seq(iface::send_msg(b, tx1, b.l(v) * b.k(2)))))))));
  };
}

/// The examples/rpc_pipeline.cpp design, verbatim.
Architecture rpc() {
  Architecture arch("rpc");
  arch.add_global("c0_done", 0);
  arch.add_global("c1_done", 0);
  const int c0 = arch.add_component("Client0", client(1, "c0_done"));
  const int c1 = arch.add_component("Client1", client(100, "c1_done"));
  const int srv = arch.add_component("Server", server());
  const int req = arch.add_connector("Calls", {ChannelKind::Fifo, 2});
  arch.attach_sender(c0, "call", req, SendPortKind::SynBlocking);
  arch.attach_sender(c1, "call", req, SendPortKind::SynBlocking);
  arch.attach_receiver(srv, "rx", req, RecvPortKind::Blocking);
  patterns::point_to_point(arch, srv, "tx0", c0, "reply", "Reply0",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           {ChannelKind::SingleSlot, 1});
  patterns::point_to_point(arch, srv, "tx1", c1, "reply", "Reply1",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           {ChannelKind::SingleSlot, 1});
  return arch;
}

// -- LTS extraction ------------------------------------------------------------

TEST(Lts, ExtractsReachableLocationsAndClassifiesActions) {
  Architecture arch = rpc();
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  bool saw_visible = false, saw_internal = false;
  for (const compile::CompiledProc& p : m.compiled()) {
    const reduce::Lts lts = reduce::extract_lts(m.spec(), p);
    EXPECT_GT(lts.n_states, 0) << p.name;
    EXPECT_LE(lts.n_states, p.n_pcs) << p.name;
    EXPECT_GE(lts.init, 0);
    for (std::size_t a = 0; a < lts.actions.size(); ++a) {
      (lts.action_visible[a] ? saw_visible : saw_internal) = true;
      EXPECT_FALSE(lts.actions[a].empty());
    }
  }
  EXPECT_TRUE(saw_visible);
  EXPECT_TRUE(saw_internal);
}

TEST(Lts, CanonicalActionsAreIdenticalForIdenticalTransitions) {
  // The same proctype compiled twice into one spec yields byte-identical
  // canonical actions -- the property the partition refinement keys on.
  Architecture arch = pubsub();
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const compile::CompiledProc& p = m.compiled().front();
  const reduce::Lts a = reduce::extract_lts(m.spec(), p);
  const reduce::Lts b = reduce::extract_lts(m.spec(), p);
  EXPECT_EQ(a.actions, b.actions);
  EXPECT_EQ(a.n_states, b.n_states);
}

// -- minimization soundness ----------------------------------------------------

VerifyOptions with_minimize(MinimizeMode mode) {
  VerifyOptions opt;
  opt.max_states = 2'000'000;
  opt.minimize = mode;
  return opt;
}

TEST(Minimize, PubSubVerdictsMatchUnminimized) {
  Architecture arch = pubsub();
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const expr::Ex inv = gen.gx("logged") <= gen.kx(2 * kEvents) &&
                       gen.gx("alarms") <= gen.kx(kEvents);
  const expr::Ex endinv = gen.gx("logged") == gen.kx(2 * kEvents) &&
                          gen.gx("alarms") == gen.kx(kEvents);
  for (const MinimizeMode mode :
       {MinimizeMode::Strong, MinimizeMode::Weak}) {
    const SafetyOutcome full = check_safety(m, with_minimize(MinimizeMode::Off));
    const SafetyOutcome red = check_safety(m, with_minimize(mode));
    EXPECT_EQ(full.passed(), red.passed()) << to_string(mode);
    EXPECT_TRUE(red.reduction.has_value());
    const SafetyOutcome inv_full =
        check_invariant(m, inv, "bounded", with_minimize(MinimizeMode::Off));
    const SafetyOutcome inv_red =
        check_invariant(m, inv, "bounded", with_minimize(mode));
    EXPECT_EQ(inv_full.passed(), inv_red.passed()) << to_string(mode);
    const SafetyOutcome end_full = check_end_invariant(
        m, endinv, "delivered", with_minimize(MinimizeMode::Off));
    const SafetyOutcome end_red =
        check_end_invariant(m, endinv, "delivered", with_minimize(mode));
    EXPECT_EQ(end_full.passed(), end_red.passed()) << to_string(mode);
  }
}

TEST(Minimize, RpcVerdictsMatchIncludingFailures) {
  Architecture arch = rpc();
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  // Passing and failing invariants must both be preserved.
  const SafetyOutcome ok_full = check_invariant(
      m, gen.gx("c0_done") <= gen.kx(1), "ok", with_minimize(MinimizeMode::Off));
  const SafetyOutcome bad_full =
      check_invariant(m, gen.gx("c0_done") == gen.kx(1), "bad",
                      with_minimize(MinimizeMode::Off));
  ASSERT_TRUE(ok_full.passed());
  ASSERT_FALSE(bad_full.passed());
  for (const MinimizeMode mode :
       {MinimizeMode::Strong, MinimizeMode::Weak}) {
    EXPECT_TRUE(check_invariant(m, gen.gx("c0_done") <= gen.kx(1), "ok",
                                with_minimize(mode))
                    .passed());
    const SafetyOutcome bad = check_invariant(
        m, gen.gx("c0_done") == gen.kx(1), "bad", with_minimize(mode));
    EXPECT_FALSE(bad.passed());
    // the violation (here: in the initial state) must still be reported
    ASSERT_TRUE(bad.result.violation.has_value());
  }
}

TEST(Minimize, LtlVerdictsMatchOnStrongQuotient) {
  Architecture arch = rpc();
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  gen.add_prop("c0_done", gen.gx("c0_done") == gen.kx(1));
  // Refutable without fairness: the polling receive port can starve the
  // client forever. The strong quotient must refute it too.
  const LtlOutcome full = check_ltl_formula(m, gen.props(), "F c0_done");
  const reduce::ReducedMachine strong(m, reduce::Equivalence::Strong);
  const LtlOutcome red =
      check_ltl_formula(strong.machine(), gen.props(), "F c0_done");
  EXPECT_EQ(full.passed(), red.passed());
  ASSERT_FALSE(red.passed());
  ASSERT_TRUE(red.result.violation.has_value());
}

TEST(Minimize, GlobalStateCountReductionAboveThreshold) {
  // The acceptance bar: > 1.5x fewer stored states on at least one of the
  // two example designs, with identical verdicts (checked above).
  double best = 0.0;
  for (Architecture arch : {pubsub(), rpc()}) {
    ModelGenerator gen;
    const kernel::Machine m = gen.generate(arch);
    const SafetyOutcome full =
        check_safety(m, with_minimize(MinimizeMode::Off));
    const SafetyOutcome red = check_safety(m, with_minimize(MinimizeMode::Weak));
    ASSERT_TRUE(full.result.stats.complete);
    ASSERT_TRUE(red.result.stats.complete);
    const double ratio =
        static_cast<double>(full.result.stats.states_stored) /
        static_cast<double>(red.result.stats.states_stored);
    std::printf("[ reduce   ] %s: %llu -> %llu states (%.2fx)\n",
                arch.name().c_str(),
                static_cast<unsigned long long>(full.result.stats.states_stored),
                static_cast<unsigned long long>(red.result.stats.states_stored),
                ratio);
    best = std::max(best, ratio);
  }
  EXPECT_GT(best, 1.5);
}

TEST(Minimize, StageNamesGainMinimizedPrefix) {
  Architecture arch = rpc();
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome red = check_safety(m, with_minimize(MinimizeMode::Weak));
  ASSERT_FALSE(red.stages.empty());
  EXPECT_EQ(red.stages.front().name, "minimized-exact");
  EXPECT_NE(red.report().find("minimization"), std::string::npos);
}

// -- verification cache --------------------------------------------------------

class CacheDir {
 public:
  explicit CacheDir(const std::string& leaf)
      : path_((std::filesystem::temp_directory_path() / leaf).string()) {
    std::filesystem::remove_all(path_);
  }
  ~CacheDir() { std::filesystem::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

SuiteOptions rpc_suite(const std::string& cache_dir) {
  SuiteOptions opts;
  opts.verify.max_states = 2'000'000;
  opts.verify.minimize = MinimizeMode::Weak;
  opts.invariant_text = "c0_done <= 1";
  opts.end_invariant_text = "c0_done == 1 && c1_done == 1";
  opts.cache_dir = cache_dir;
  return opts;
}

TEST(Cache, UnchangedDesignRepeatRunHitsEveryObligation) {
  CacheDir dir("pnp_test_cache_repeat");
  Architecture arch = rpc();
  const SuiteReport first = verify_obligations(arch, rpc_suite(dir.path()));
  EXPECT_TRUE(first.all_passed()) << first.report();
  EXPECT_EQ(first.cache_hits(), 0);
  EXPECT_GT(first.recomputed(), 0);
  // 3 connectors + safety + invariant + end-invariant
  EXPECT_EQ(first.obligations.size(), 6u);

  const SuiteReport second = verify_obligations(arch, rpc_suite(dir.path()));
  EXPECT_TRUE(second.all_passed());
  EXPECT_EQ(second.recomputed(), 0) << second.report();  // 100% hits
  EXPECT_EQ(second.cache_hits(),
            static_cast<int>(second.obligations.size()));
  // cached entries keep the original verdict metadata
  for (const ObligationResult& o : second.obligations) {
    EXPECT_TRUE(o.from_cache);
    EXPECT_GT(o.states_stored, 0u) << o.kind << " " << o.label;
  }
}

TEST(Cache, ConnectorSwapReverifiesOnlyDirtiedSlice) {
  CacheDir dir("pnp_test_cache_swap");
  Architecture arch = rpc();
  const SuiteReport before = verify_obligations(arch, rpc_suite(dir.path()));
  ASSERT_TRUE(before.all_passed()) << before.report();

  // The paper's iterate step: swap one connector's channel kind. Only the
  // swapped connector's protocol obligation and the global obligations
  // (whose slice is the whole design) may recompute.
  arch.set_channel(arch.find_connector("Reply1"), {ChannelKind::Fifo, 2});
  const SuiteReport after = verify_obligations(arch, rpc_suite(dir.path()));
  EXPECT_TRUE(after.all_passed()) << after.report();
  for (const ObligationResult& o : after.obligations) {
    if (o.kind == "connector-protocol") {
      EXPECT_EQ(o.from_cache, o.label != "Reply1")
          << o.label << " " << after.report();
    } else {
      EXPECT_FALSE(o.from_cache) << o.kind;  // global slice changed
    }
  }
  EXPECT_EQ(after.cache_hits(), 2);   // Calls + Reply0
  EXPECT_EQ(after.recomputed(), 4);  // Reply1 protocol + 3 globals

  // Swapping back restores the original digests: everything hits again.
  arch.set_channel(arch.find_connector("Reply1"), {ChannelKind::SingleSlot, 1});
  const SuiteReport restored = verify_obligations(arch, rpc_suite(dir.path()));
  EXPECT_EQ(restored.recomputed(), 0) << restored.report();
}

TEST(Cache, OptionsChangeMissesCache) {
  CacheDir dir("pnp_test_cache_opts");
  Architecture arch = rpc();
  verify_obligations(arch, rpc_suite(dir.path()));
  SuiteOptions changed = rpc_suite(dir.path());
  changed.verify.max_states = 1'000'000;  // different bound, different key
  const SuiteReport rerun = verify_obligations(arch, changed);
  EXPECT_EQ(rerun.cache_hits(), 0);
}

TEST(Cache, DisabledCacheStillVerifiesEverything) {
  Architecture arch = rpc();
  SuiteOptions opts = rpc_suite("");
  const SuiteReport rep = verify_obligations(arch, opts);
  EXPECT_TRUE(rep.all_passed());
  EXPECT_EQ(rep.cache_hits(), 0);
  EXPECT_EQ(rep.recomputed(), static_cast<int>(rep.obligations.size()));
}

TEST(Cache, PersistedFileRoundTrips) {
  CacheDir dir("pnp_test_cache_roundtrip");
  reduce::ObligationKey key;
  key.kind = "safety";
  key.label = "with \"quotes\" and\nnewline";
  key.slice_hash = 7;
  {
    reduce::VerificationCache cache(dir.path());
    cache.record(key, {"", "", "", true, "exact", 1234, 0.5});
    cache.flush();
  }
  reduce::VerificationCache reload(dir.path());
  const auto hit = reload.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->passed);
  EXPECT_EQ(hit->stage, "exact");
  EXPECT_EQ(hit->states_stored, 1234u);
  EXPECT_EQ(hit->label, key.label);
  EXPECT_EQ(reload.hits(), 1);
  EXPECT_EQ(reload.misses(), 0);
}

// -- GenStats reuse accounting across a swap iteration -------------------------

TEST(GenStats, ComponentModelsReusedAcrossChannelSwap) {
  Architecture arch = rpc();
  ModelGenerator gen;
  const kernel::Machine before = gen.generate(arch);
  const GenStats first = gen.last_stats();
  EXPECT_EQ(first.component_models_built, 3);
  EXPECT_EQ(first.component_models_reused, 0);

  // Record each component's proctype and the identity of its compiled body
  // (the Stmt nodes live in the append-only spec, so reuse means pointer
  // equality, not just equal indices).
  auto proctype_of = [&](const std::string& name) {
    for (const ProcessInst& p : gen.spec().processes)
      if (p.name == name) return p.proctype;
    ADD_FAILURE() << "no process named " << name;
    return -1;
  };
  const int c0_pt = proctype_of("Client0");
  const Stmt* c0_body =
      gen.spec().proctypes[static_cast<std::size_t>(c0_pt)].body.front().get();

  arch.set_channel(arch.find_connector("Reply1"), {ChannelKind::Fifo, 2});
  const kernel::Machine after = gen.generate(arch);
  const GenStats second = gen.last_stats();

  // All three component models are reused untouched...
  EXPECT_EQ(second.component_models_built, 0);
  EXPECT_EQ(second.component_models_reused, 3);
  // ...as pointer-identical proctypes,
  EXPECT_EQ(proctype_of("Client0"), c0_pt);
  EXPECT_EQ(
      gen.spec().proctypes[static_cast<std::size_t>(c0_pt)].body.front().get(),
      c0_body);
  // ...and the unchanged ports/channels come from the block cache too.
  EXPECT_GT(second.block_models_reused, 0);
  EXPECT_GT(second.channels_reused, 0);
  // The cumulative counters aggregate both iterations.
  EXPECT_EQ(gen.total_stats().component_models_built, 3);
  EXPECT_EQ(gen.total_stats().component_models_reused, 3);
}

// -- slice texts ---------------------------------------------------------------

TEST(SliceText, ConnectorSliceIsLocal) {
  Architecture arch = rpc();
  const int calls = arch.find_connector("Calls");
  const int reply1 = arch.find_connector("Reply1");
  const std::string calls_before = connector_slice_text(arch, calls);
  const std::string arch_before = architecture_slice_text(arch);
  arch.set_channel(reply1, {ChannelKind::Fifo, 2});
  // the edited connector's slice and the whole-design slice change...
  EXPECT_NE(connector_slice_text(arch, reply1),
            architecture_slice_text(arch));
  EXPECT_NE(architecture_slice_text(arch), arch_before);
  // ...but the untouched connector's slice is byte-identical
  EXPECT_EQ(connector_slice_text(arch, calls), calls_before);
}

TEST(SliceText, BehaviorFingerprintEntersTheGlobalSlice) {
  Architecture arch = rpc();
  const std::string before = architecture_slice_text(arch);
  arch.set_behavior_fingerprint(arch.find_component("Server"),
                                "deadbeefdeadbeef");
  EXPECT_NE(architecture_slice_text(arch), before);
}

}  // namespace
}  // namespace pnp
