// Fault-injection and budget-governed-verification tests: the fault
// connector blocks end to end (duplication, reorder, loss, send timeout,
// crash-restart), the degradation ladder, deadline/memory truncation with
// structured reasons, and check_resilience distinguishing a fault-tolerant
// from a fault-intolerant design.
#include <gtest/gtest.h>

#include "adl/adl.h"
#include "explore/explorer.h"
#include "model/builder.h"
#include "pnp/pnp.h"

namespace pnp {
namespace {

// -- shared fixtures ----------------------------------------------------------

/// The resilient/fragile counter pair of examples/models/*.arch, inline:
/// one message, a forever-listening receiver, and a `received` global whose
/// update is either idempotent (tolerates duplication) or counting (does
/// not). `channel` lets tests swap the connector kind directly.
std::string counter_arch(const std::string& update,
                         const std::string& channel = "fifo(2)",
                         const std::string& sender_mods = "") {
  return "architecture counter {\n"
         "  global received = 0;\n"
         "  component Sender " + sender_mods + " {\n"
         "    behavior { out_data!7,0,0,0,0,0; out_sig?SEND_SUCC,_; }\n"
         "  }\n"
         "  component Receiver {\n"
         "    behavior {\n"
         "      byte v;\n"
         "      do\n"
         "      :: in_data!0,0,0,0,0,0; in_sig?RECV_SUCC,_;\n"
         "         in_data?v,_,_,_,_,_; " + update + "\n"
         "      od\n"
         "    }\n"
         "  }\n"
         "  connector Link : " + channel + " {\n"
         "    sender Sender.out via asyn_blocking;\n"
         "    receiver Receiver.in via blocking;\n"
         "  }\n"
         "}\n";
}

SafetyOutcome verify_counter(const std::string& source,
                             std::uint64_t max_states = 2'000'000) {
  Architecture arch = adl::parse_architecture(source);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  VerifyOptions opt;
  opt.max_states = max_states;
  return check_invariant(m, gen.parse_expr_text("received <= 1"),
                         "received <= 1", opt);
}

// -- fault connector blocks ---------------------------------------------------

TEST(FaultBlocks, DuplicatingFifoBreaksCountingReceiver) {
  const SafetyOutcome out =
      verify_counter(counter_arch("received++", "duplicating_fifo(2)"));
  ASSERT_FALSE(out.passed());
  EXPECT_EQ(out.result.violation->kind,
            explore::ViolationKind::InvariantViolated);
}

TEST(FaultBlocks, DuplicatingFifoToleratedByIdempotentReceiver) {
  EXPECT_TRUE(
      verify_counter(counter_arch("received = 1", "duplicating_fifo(2)"))
          .passed());
}

TEST(FaultBlocks, DroppingFifoCausesNoDeadlockOrDoubleDelivery) {
  // Loss under the busy-polling receive protocol is livelock, never
  // deadlock, and never delivers more than was sent.
  EXPECT_TRUE(
      verify_counter(counter_arch("received++", "dropping_fifo(2)")).passed());
}

TEST(FaultBlocks, ReorderingFifoAllowsOutOfOrderDelivery) {
  // Two messages, a receiver that records the FIRST value it sees, and an
  // end-state invariant "the first delivery was message 1": holds under
  // fifo, fails once the connector may dequeue in any order.
  const auto arch_text = [](const std::string& channel) {
    return "architecture order {\n"
           "  global first = 0;\n"
           "  component Sender {\n"
           "    behavior {\n"
           "      out_data!1,0,0,0,0,0; out_sig?SEND_SUCC,_;\n"
           "      out_data!2,0,0,0,0,0; out_sig?SEND_SUCC,_;\n"
           "    }\n"
           "  }\n"
           "  component Receiver {\n"
           "    behavior {\n"
           "      byte v; byte n;\n"
           "      do\n"
           "      :: n < 2 ->\n"
           "         in_data!0,0,0,0,0,0; in_sig?RECV_SUCC,_;\n"
           "         in_data?v,_,_,_,_,_;\n"
           "         do :: first == 0 -> first = v :: first > 0 -> break od;\n"
           "         n++\n"
           "      :: n == 2 -> break\n"
           "      od\n"
           "    }\n"
           "  }\n"
           "  connector Link : " + channel + " {\n"
           "    sender Sender.out via asyn_blocking;\n"
           "    receiver Receiver.in via blocking;\n"
           "  }\n"
           "}\n";
  };
  const auto first_is_one = [&](const std::string& channel) {
    Architecture arch = adl::parse_architecture(arch_text(channel));
    ModelGenerator gen;
    const kernel::Machine m = gen.generate(arch);
    return check_end_invariant(m, gen.parse_expr_text("first == 1"),
                               "first == 1");
  };
  EXPECT_TRUE(first_is_one("fifo(2)").passed());
  EXPECT_FALSE(first_is_one("reordering_fifo(2)").passed());
}

TEST(FaultBlocks, TimeoutRetryReportsSendFailOnFullChannel) {
  // msg1 fills the fifo(1); the receiver never drains it, so msg2 exhausts
  // its retries and the port reports SEND_FAIL instead of spinning.
  const std::string src =
      "architecture timeout {\n"
      "  global failed = 0;\n"
      "  component Sender {\n"
      "    behavior {\n"
      "      out_data!1,0,0,0,0,0; out_sig?SEND_SUCC,_;\n"
      "      out_data!2,0,0,0,0,0; out_sig?SEND_FAIL,_;\n"
      "      failed = 1;\n"
      "    }\n"
      "  }\n"
      "  component Idle { behavior { skip } }\n"
      "  connector Link : fifo(1) {\n"
      "    sender Sender.out via timeout_retry(2);\n"
      "    receiver Idle.in via blocking;\n"
      "  }\n"
      "}\n";
  Architecture arch = adl::parse_architecture(src);
  EXPECT_EQ(arch.attachments()[0].send_kind, SendPortKind::TimeoutRetry);
  EXPECT_EQ(arch.attachments()[0].send_retries, 2);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  EXPECT_TRUE(check_safety(m).passed());  // no deadlock on the fail path
  EXPECT_TRUE(check_end_invariant(m, gen.parse_expr_text("failed == 1"),
                                  "failed == 1")
                  .passed());
}

TEST(FaultBlocks, CrashRestartRedeliversAndBudgetZeroIsNoop) {
  // A crash between handing the message over and consuming SEND_SUCC makes
  // the restarted sender transmit again (double delivery) or wedge its
  // port mid-rendezvous (deadlock); either way the counting receiver's
  // architecture is not crash-tolerant. Budget 0 disables the fault.
  EXPECT_FALSE(verify_counter(
                   counter_arch("received++", "fifo(2)", "crashes(1)"))
                   .passed());
  EXPECT_TRUE(verify_counter(
                  counter_arch("received++", "fifo(2)", "crashes(0)"))
                  .passed());
}

TEST(FaultBlocks, LossyFifoAcknowledgesOverflowAndMayStillDeliverBoth) {
  // LossyFifo (the paper's section-3.3 block) drops only on OVERFLOW and
  // always acknowledges. Two messages through a capacity-1 lossy queue:
  // the sender never wedges, and when the receiver drains in between, both
  // arrive -- so counting two deliveries is reachable (invariant fails)
  // while the idempotent receiver stays safe. Deadlock checking is on in
  // both runs.
  const std::string two_sender =
      "architecture lossy {\n"
      "  global received = 0;\n"
      "  component Sender {\n"
      "    behavior {\n"
      "      out_data!1,0,0,0,0,0; out_sig?SEND_SUCC,_;\n"
      "      out_data!2,0,0,0,0,0; out_sig?SEND_SUCC,_;\n"
      "    }\n"
      "  }\n"
      "  component Receiver {\n"
      "    behavior {\n"
      "      byte v;\n"
      "      do\n"
      "      :: in_data!0,0,0,0,0,0; in_sig?RECV_SUCC,_;\n"
      "         in_data?v,_,_,_,_,_; UPDATE\n"
      "      od\n"
      "    }\n"
      "  }\n"
      "  connector Link : lossy_fifo(1) {\n"
      "    sender Sender.out via asyn_blocking;\n"
      "    receiver Receiver.in via blocking;\n"
      "  }\n"
      "}\n";
  const auto with_update = [&](const std::string& u) {
    std::string s = two_sender;
    s.replace(s.find("UPDATE"), 6, u);
    return s;
  };
  EXPECT_TRUE(verify_counter(with_update("received = 1")).passed());
  const SafetyOutcome counted = verify_counter(with_update("received++"));
  ASSERT_FALSE(counted.passed());
  EXPECT_EQ(counted.result.violation->kind,
            explore::ViolationKind::InvariantViolated);
}

TEST(FaultBlocks, BitstateSearchStillFindsFaultViolations) {
  // Bitstate hashing composes with fault blocks: a violation it reports is
  // a real counterexample.
  Architecture arch = adl::parse_architecture(
      counter_arch("received++", "duplicating_fifo(2)"));
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  explore::Options opt;
  opt.bitstate = true;
  opt.invariant = gen.parse_expr_text("received <= 1").ref;
  opt.invariant_name = "received <= 1";
  const explore::Result r = explore::explore(m, opt);
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_EQ(r.violation->kind, explore::ViolationKind::InvariantViolated);
  EXPECT_EQ(r.stats.truncation, explore::TruncationReason::BitstateApprox);
}

// -- budgets and the degradation ladder ---------------------------------------

/// Several independent counters: a state space in the tens of thousands,
/// plenty for truncation tests, with no violations.
model::SystemSpec big_system() {
  using namespace model;
  SystemSpec sys;
  for (int w = 0; w < 4; ++w) {
    ProcBuilder p(sys, "W" + std::to_string(w));
    const LVar i = p.local("i");
    p.finish(seq(do_(alt(seq(guard(p.l(i) < p.k(6)),
                             assign(i, p.l(i) + p.k(1)))),
                     alt(seq(guard(p.l(i) == p.k(6)), break_())))));
    sys.spawn("w" + std::to_string(w), w, {});
  }
  return sys;
}

TEST(Budgets, DeadlineReturnsStructuredPartialResult) {
  const model::SystemSpec sys = big_system();
  const kernel::Machine m(sys);
  explore::Options opt;
  opt.deadline_seconds = 1e-9;  // expires before the first budget check
  const explore::Result r = explore::explore(m, opt);
  EXPECT_FALSE(r.stats.complete);
  EXPECT_EQ(r.stats.truncation, explore::TruncationReason::Deadline);
  EXPECT_GT(r.stats.states_stored, 0u);
  EXPECT_GT(r.stats.approx_memory_bytes, 0u);
  EXPECT_FALSE(r.violation.has_value());  // partial, not spurious
}

TEST(Budgets, MemoryBudgetTruncatesWithReason) {
  const model::SystemSpec sys = big_system();
  const kernel::Machine m(sys);
  explore::Options opt;
  opt.memory_budget_bytes = 1;
  const explore::Result r = explore::explore(m, opt);
  EXPECT_FALSE(r.stats.complete);
  EXPECT_EQ(r.stats.truncation, explore::TruncationReason::MemoryBudget);
}

TEST(Budgets, MaxStatesAndMaxDepthReportDistinctReasons) {
  const model::SystemSpec sys = big_system();
  const kernel::Machine m(sys);
  explore::Options opt;
  opt.max_states = 10;
  EXPECT_EQ(explore::explore(m, opt).stats.truncation,
            explore::TruncationReason::MaxStates);
  explore::Options dopt;
  dopt.max_depth = 2;
  EXPECT_EQ(explore::explore(m, dopt).stats.truncation,
            explore::TruncationReason::MaxDepth);
}

TEST(Budgets, TruncationReasonNamesAreStable) {
  using explore::TruncationReason;
  EXPECT_STREQ(explore::truncation_reason_name(TruncationReason::None),
               "none");
  EXPECT_STREQ(explore::truncation_reason_name(TruncationReason::Deadline),
               "wall-clock deadline exceeded");
  EXPECT_STREQ(
      explore::truncation_reason_name(TruncationReason::MemoryBudget),
      "memory budget exceeded");
}

TEST(Ladder, TruncatedExactSearchDegradesToBitstate) {
  const model::SystemSpec sys = big_system();
  const kernel::Machine m(sys);
  VerifyOptions opt;
  opt.max_states = 10;  // force truncation of the exact stage
  const SafetyOutcome out = check_safety(m, opt);
  ASSERT_TRUE(out.degraded());
  ASSERT_EQ(out.stages.size(), 2u);
  EXPECT_EQ(out.stages[0].name, "exact");
  EXPECT_EQ(out.stages[0].stats.truncation,
            explore::TruncationReason::MaxStates);
  EXPECT_EQ(out.stages[1].name, "bitstate");
  EXPECT_NE(out.report().find("degradation ladder"), std::string::npos);
}

TEST(Ladder, CompleteSearchDoesNotDegrade) {
  const model::SystemSpec sys = big_system();
  const kernel::Machine m(sys);
  const SafetyOutcome out = check_safety(m);
  EXPECT_TRUE(out.passed());
  EXPECT_FALSE(out.degraded());
  ASSERT_EQ(out.stages.size(), 1u);
  EXPECT_TRUE(out.stages[0].stats.complete);
}

// -- check_resilience ---------------------------------------------------------

ResilienceOptions counter_resilience_options() {
  ResilienceOptions opts;
  opts.invariant_text = "received <= 1";
  return opts;
}

TEST(Resilience, DistinguishesTolerantFromIntolerantDesign) {
  const std::vector<FaultSpec> faults = {
      {FaultKind::MessageDuplication, "Link", 0},
      {FaultKind::MessageReorder, "Link", 0},
      {FaultKind::MessageLoss, "Link", 0},
      {FaultKind::SendTimeout, "Sender.out", 2},
  };
  const Architecture resilient =
      adl::parse_architecture(counter_arch("received = 1"));
  const Architecture fragile =
      adl::parse_architecture(counter_arch("received++"));

  const ResilienceReport ok =
      check_resilience(resilient, faults, counter_resilience_options());
  EXPECT_TRUE(ok.baseline_passed());
  EXPECT_TRUE(ok.all_tolerated());
  EXPECT_NE(ok.report().find("all injected faults tolerated"),
            std::string::npos);

  const ResilienceReport bad =
      check_resilience(fragile, faults, counter_resilience_options());
  EXPECT_TRUE(bad.baseline_passed());  // fault-free design is correct...
  EXPECT_FALSE(bad.all_tolerated());   // ...but not fault-tolerant
  ASSERT_EQ(bad.faults.size(), faults.size());
  EXPECT_FALSE(bad.faults[0].tolerated());  // duplication breaks it
  EXPECT_TRUE(bad.faults[2].tolerated());   // loss is harmless here
  EXPECT_NE(bad.report().find("VULNERABLE"), std::string::npos);
  EXPECT_NE(bad.report().find("message-duplication"), std::string::npos);
}

TEST(Resilience, VariantsReuseComponentModels) {
  // One generator serves baseline + all fault variants: the plug-and-play
  // reuse claim means component models are built once, then reused.
  const Architecture arch =
      adl::parse_architecture(counter_arch("received = 1"));
  const ResilienceReport rep = check_resilience(
      arch, {{FaultKind::MessageDuplication, "Link", 0},
             {FaultKind::MessageLoss, "Link", 0}},
      counter_resilience_options());
  EXPECT_EQ(rep.gen_stats.component_models_built, 2);
  EXPECT_GE(rep.gen_stats.component_models_reused, 4);
  EXPECT_GE(rep.gen_stats.block_models_reused, 1);
}

TEST(Resilience, DefaultFaultSuiteCoversTheWholeDesign) {
  const Architecture arch =
      adl::parse_architecture(counter_arch("received = 1"));
  const std::vector<FaultSpec> suite = default_fault_suite(arch);
  // 3 channel faults on Link + 1 send timeout + 2 crash-restarts.
  ASSERT_EQ(suite.size(), 6u);
  int crash = 0, timeout = 0, channel = 0;
  for (const FaultSpec& f : suite) {
    if (f.kind == FaultKind::CrashRestart) ++crash;
    else if (f.kind == FaultKind::SendTimeout) ++timeout;
    else ++channel;
  }
  EXPECT_EQ(crash, 2);
  EXPECT_EQ(timeout, 1);
  EXPECT_EQ(channel, 3);
}

TEST(Resilience, UnknownTargetRaises) {
  const Architecture arch =
      adl::parse_architecture(counter_arch("received = 1"));
  EXPECT_THROW(check_resilience(arch, {{FaultKind::MessageLoss, "NoSuch", 0}},
                                counter_resilience_options()),
               ModelError);
  EXPECT_THROW(
      check_resilience(arch, {{FaultKind::CrashRestart, "NoSuch", 1}},
                       counter_resilience_options()),
      ModelError);
}

// -- ADL round-trips for the fault vocabulary ---------------------------------

TEST(Adl, ParsesFaultKindsAndCrashBudgets) {
  const Architecture arch = adl::parse_architecture(
      counter_arch("received = 1", "duplicating_fifo(2)", "crashes(3)"));
  EXPECT_EQ(arch.connectors()[0].channel.kind, ChannelKind::DuplicatingFifo);
  EXPECT_EQ(arch.components()[0].max_crashes, 3);
  EXPECT_NE(arch.describe().find("[crashes <= 3]"), std::string::npos);

  EXPECT_EQ(adl::parse_architecture(
                counter_arch("received = 1", "reordering_fifo(2)"))
                .connectors()[0]
                .channel.kind,
            ChannelKind::ReorderingFifo);
  EXPECT_EQ(adl::parse_architecture(
                counter_arch("received = 1", "dropping_fifo(1)"))
                .connectors()[0]
                .channel.kind,
            ChannelKind::DroppingFifo);
}

}  // namespace
}  // namespace pnp
