// pnpd end to end: the pnp.job.v1 protocol, the fair/admission-controlled
// job queue, and a live in-process server driven through serve::Client --
// including the failure paths the daemon has to survive (malformed frames,
// oversized requests, clients vanishing mid-job) and the behaviours that
// make it a daemon rather than N pnpv processes (a verdict cache shared
// across connections, graceful drain with interrupted partial reports).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "codegen/engine.h"
#include "serve/client.h"
#include "serve/proto.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "support/json.h"

namespace pnp::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// A fast architecture (the shipped demo design): two components, one
// connector, so a run produces one connector-protocol obligation plus any
// requested global property.
constexpr const char* kDemoArch = R"(
architecture demo {
  global delivered = 0;
  component Producer {
    behavior {
      byte i = 1;
      do
      :: i <= 3 -> out_data!i,0,0,0,0,0; out_sig?SEND_SUCC,_; i++
      :: i > 3 -> break
      od
    }
  }
  component Consumer {
    behavior {
      byte j = 1;
      byte v;
      do
      :: j <= 3 ->
         in_data!0,0,0,0,0,0; in_sig?RECV_SUCC,_; in_data?v,_,_,_,_,_;
         assert(v == j); delivered++; j++
      :: j > 3 -> break
      od
    }
  }
  connector Link : fifo(2) {
    sender Producer.out via asyn_blocking;
    receiver Consumer.in via blocking;
  }
}
)";

constexpr const char* kFastPml = R"(
chan box = [2] of { byte };
byte received;
active proctype Producer() {
  byte i = 1;
  do :: i <= 3 -> box!i; i++ :: i > 3 -> break od
}
active proctype Consumer() {
  byte j = 1;
  byte v;
  do :: j <= 3 -> box?v; received++; j++ :: j > 3 -> break od
}
)";

// ~13.8M reachable states (61^4): long enough that a job is reliably still
// running when a test cancels, disconnects, or drains it. Submitted with
// check_deadlock off (the all-counters-maxed deadlock would otherwise end
// the search in a few hundred steps of DFS).
constexpr const char* kSlowPml = R"(
byte a; byte b; byte c; byte d;
active proctype A() { do :: a < 60 -> a++ od }
active proctype B() { do :: b < 60 -> b++ od }
active proctype C() { do :: c < 60 -> c++ od }
active proctype D() { do :: d < 60 -> d++ od }
)";

JobRequest slow_request(const std::string& id) {
  JobRequest req;
  req.id = id;
  req.model_text = kSlowPml;
  req.kind = Session::SourceKind::Pml;
  req.config.check_deadlock = false;
  return req;
}

// -- protocol ----------------------------------------------------------------

TEST(ServeProto, SubmitRoundTrips) {
  JobRequest req;
  req.id = "job-1";
  req.model_text = "architecture a {}";
  req.kind = Session::SourceKind::Arch;
  req.resilience = true;
  req.checkpoint = true;
  req.explicit_memory = true;
  req.config.max_states = 1234;
  req.config.deadline_seconds = 2.5;
  req.config.memory_budget_bytes = 1 << 20;
  req.config.threads = 3;
  req.config.check_deadlock = false;
  req.config.por = true;
  req.config.invariant_text = "x <= 3";
  req.config.end_invariant_text = "x == 3";
  req.config.ltl = {"F done", "G safe"};
  req.config.props = {{"done", "x == 3"}, {"safe", "x <= 3"}};

  JobRequest back;
  std::string err;
  ASSERT_TRUE(parse_request(render_submit(req), back, &err)) << err;
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.model_text, req.model_text);
  EXPECT_EQ(back.kind, Session::SourceKind::Arch);
  EXPECT_TRUE(back.resilience);
  EXPECT_TRUE(back.checkpoint);
  EXPECT_TRUE(back.explicit_memory);
  EXPECT_EQ(back.config.max_states, 1234u);
  EXPECT_DOUBLE_EQ(back.config.deadline_seconds, 2.5);
  EXPECT_EQ(back.config.memory_budget_bytes, std::uint64_t{1} << 20);
  EXPECT_EQ(back.config.threads, 3);
  EXPECT_FALSE(back.config.check_deadlock);
  EXPECT_TRUE(back.config.por);
  EXPECT_EQ(back.config.invariant_text, "x <= 3");
  EXPECT_EQ(back.config.end_invariant_text, "x == 3");
  EXPECT_EQ(back.config.ltl, req.config.ltl);
  EXPECT_EQ(back.config.props, req.config.props);
}

TEST(ServeProto, EngineKeyRoundTripsAndRejectsUnknown) {
  // Every named engine survives render -> parse; the default (interp) is
  // omitted from the frame and restored on parse.
  for (const auto kind :
       {codegen::EngineKind::Interp, codegen::EngineKind::Bytecode,
        codegen::EngineKind::Aot}) {
    JobRequest req;
    req.id = "job-e";
    req.model_text = "architecture a {}";
    req.config.engine = kind;
    const std::string frame = render_submit(req);
    if (kind == codegen::EngineKind::Interp)
      EXPECT_EQ(frame.find("\"engine\""), std::string::npos) << frame;
    JobRequest back;
    std::string err;
    ASSERT_TRUE(parse_request(frame, back, &err)) << err;
    EXPECT_EQ(back.config.engine, kind);
  }
  // An unknown engine is a structured request error naming the choices.
  JobRequest req;
  std::string err;
  EXPECT_FALSE(parse_request(
      "{\"pnp.job.v1\":\"submit\",\"id\":\"x\",\"model\":\"m\","
      "\"engine\":\"jit\"}",
      req, &err));
  EXPECT_NE(err.find("unknown engine"), std::string::npos) << err;
  EXPECT_NE(err.find("bytecode"), std::string::npos) << err;
}

TEST(ServeProto, MalformedFramesAreRejectedWithReasons) {
  const char* bad[] = {
      "this is not json",
      "[1,2,3]",                                       // not an object
      "{\"id\":\"x\"}",                                // no verb
      "{\"pnp.job.v1\":\"launch\",\"id\":\"x\"}",      // unknown verb
      "{\"pnp.job.v1\":\"submit\",\"model\":\"m\"}",   // submit without id
      "{\"pnp.job.v1\":\"submit\",\"id\":\"x\"}",      // submit without model
      "{\"pnp.job.v1\":\"cancel\"}",                   // cancel without id
      "{\"pnp.job.v1\":\"submit\",\"id\":\"x\",\"model\":\"m\","
      "\"kind\":\"spin\"}",                            // unknown kind
      "{\"pnp.job.v1\":\"submit\",\"id\":\"x\",\"model\":\"m\","
      "\"ltl\":\"F done\"}",                           // ltl not an array
  };
  for (const char* frame : bad) {
    JobRequest req;
    std::string err;
    EXPECT_FALSE(parse_request(frame, req, &err)) << frame;
    EXPECT_FALSE(err.empty()) << frame;
  }
}

TEST(ServeProto, ControlFrames) {
  JobRequest req;
  std::string err;
  ASSERT_TRUE(parse_request(render_ping(), req, &err)) << err;
  EXPECT_EQ(req.verb, Verb::Ping);
  ASSERT_TRUE(parse_request(render_cancel("j9"), req, &err)) << err;
  EXPECT_EQ(req.verb, Verb::Cancel);
  EXPECT_EQ(req.id, "j9");
}

// -- the job queue ------------------------------------------------------------

Job make_job(std::uint64_t client, const std::string& id) {
  Job job;
  job.client = client;
  job.req.id = id;
  job.req.model_text = "m";
  return job;
}

TEST(ServeQueue, RoundRobinAcrossClientsFifoWithin) {
  JobQueue q(/*memory_budget=*/0, /*default_charge=*/1,
             /*aging_seconds=*/3600.0);
  std::string reason;
  ASSERT_TRUE(q.submit(make_job(1, "a1"), &reason));
  ASSERT_TRUE(q.submit(make_job(1, "a2"), &reason));
  ASSERT_TRUE(q.submit(make_job(1, "a3"), &reason));
  ASSERT_TRUE(q.submit(make_job(2, "b1"), &reason));
  std::vector<std::string> order;
  for (int i = 0; i < 4; ++i) {
    auto job = q.pop();
    ASSERT_TRUE(job.has_value());
    order.push_back(job->req.id);
    q.release(job->seq);
  }
  // Client 2's one job is served after client 1's first, not after its
  // third -- a bulk submitter cannot starve a light one.
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "b1", "a2", "a3"}));
}

TEST(ServeQueue, AgedJobsJumpTheRoundRobin) {
  // Aging threshold zero: every queued job is instantly "aged", so the
  // scheduler always picks the globally oldest -- strict arrival order.
  JobQueue q(0, 1, /*aging_seconds=*/0.0);
  std::string reason;
  ASSERT_TRUE(q.submit(make_job(1, "a1"), &reason));
  ASSERT_TRUE(q.submit(make_job(1, "a2"), &reason));
  ASSERT_TRUE(q.submit(make_job(2, "b1"), &reason));
  std::vector<std::string> order;
  for (int i = 0; i < 3; ++i) {
    auto job = q.pop();
    ASSERT_TRUE(job.has_value());
    order.push_back(job->req.id);
    q.release(job->seq);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "a2", "b1"}));
}

TEST(ServeQueue, AdmissionControlRejectsOverBudgetWithReason) {
  JobQueue q(/*memory_budget=*/1000, /*default_charge=*/400, 3600.0);
  std::string reason;
  ASSERT_TRUE(q.submit(make_job(1, "a"), &reason));
  ASSERT_TRUE(q.submit(make_job(2, "b"), &reason));
  EXPECT_EQ(q.charged(), 800u);
  EXPECT_FALSE(q.submit(make_job(3, "c"), &reason));
  EXPECT_NE(reason.find("memory budget exceeded"), std::string::npos);
  // Finishing a job makes room again.
  auto job = q.pop();
  ASSERT_TRUE(job.has_value());
  q.release(job->seq);
  EXPECT_TRUE(q.submit(make_job(3, "c"), &reason)) << reason;
}

TEST(ServeQueue, IdleServerAdmitsOneOverBudgetJob) {
  JobQueue q(1000, 400, 3600.0);
  Job big = make_job(1, "big");
  big.req.explicit_memory = true;
  big.req.config.memory_budget_bytes = 5000;  // alone over the server cap
  std::string reason;
  ASSERT_TRUE(q.submit(std::move(big), &reason)) << reason;
  EXPECT_EQ(q.charged(), 5000u);
  // ...but nothing else fits beside it.
  EXPECT_FALSE(q.submit(make_job(2, "small"), &reason));
}

TEST(ServeQueue, CancelClientDropsQueuedAndFlagsRunning) {
  JobQueue q(0, 1, 3600.0);
  std::string reason;
  ASSERT_TRUE(q.submit(make_job(1, "running"), &reason));
  auto running = q.pop();
  ASSERT_TRUE(running.has_value());
  ASSERT_TRUE(q.submit(make_job(1, "queued"), &reason));
  ASSERT_TRUE(q.submit(make_job(2, "other"), &reason));

  EXPECT_EQ(q.cancel_client(1), 1u);  // one queued job dropped
  EXPECT_TRUE(running->cancel->load());
  EXPECT_EQ(q.depth(), 1u);  // client 2 untouched
  auto other = q.pop();
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(other->req.id, "other");
  EXPECT_FALSE(other->cancel->load());
}

TEST(ServeQueue, CloseReturnsPendingAndRejectsLaterSubmits) {
  JobQueue q(0, 1, 3600.0);
  std::string reason;
  ASSERT_TRUE(q.submit(make_job(1, "p1"), &reason));
  ASSERT_TRUE(q.submit(make_job(2, "p2"), &reason));
  std::vector<Job> pending = q.close();
  EXPECT_EQ(pending.size(), 2u);
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.charged(), 0u);
  EXPECT_FALSE(q.submit(make_job(3, "late"), &reason));
  EXPECT_NE(reason.find("draining"), std::string::npos);
  EXPECT_FALSE(q.pop().has_value());
}

// -- the live server -----------------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("pnp_serve_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    StopServer();
    fs::remove_all(dir_);
  }

  void StartServer(int workers = 2,
                   std::uint64_t memory_budget = std::uint64_t{4} << 30,
                   std::uint64_t default_job_memory = std::uint64_t{256}
                                                      << 20) {
    ServerOptions o;
    o.socket_path = (dir_ / "pnpd.sock").string();
    o.workers = workers;
    o.memory_budget = memory_budget;
    o.default_job_memory = default_job_memory;
    o.state_dir = (dir_ / "state").string();
    server_ = std::make_unique<Server>(o);
    std::string err;
    ASSERT_TRUE(server_->start(&err)) << err;
    run_thread_ = std::thread([this] { server_->run(); });
  }

  void StopServer() {
    if (server_ != nullptr && run_thread_.joinable()) {
      server_->request_stop();
      run_thread_.join();
    }
    server_.reset();
  }

  Client Connect() {
    Client c;
    std::string err;
    EXPECT_TRUE(c.connect_unix((dir_ / "pnpd.sock").string(), &err)) << err;
    return c;
  }

  /// Polls `pred` (on the server stats) until it holds or 30s pass.
  bool WaitForStats(const std::function<bool(const ServerStats&)>& pred) {
    const auto deadline = std::chrono::steady_clock::now() + 30s;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred(server_->stats())) return true;
      std::this_thread::sleep_for(10ms);
    }
    return false;
  }

  std::string ReadLedger() {
    std::ifstream in(server_->ledger_path());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  fs::path dir_;
  std::unique_ptr<Server> server_;
  std::thread run_thread_;
};

TEST_F(ServeTest, VerifiesInlineArchAndStreamsEvents) {
  StartServer();
  Client client = Connect();
  JobRequest req;
  req.id = "demo.arch";
  req.model_text = kDemoArch;
  req.config.end_invariant_text = "delivered == 3";

  Client::Outcome out;
  std::string err;
  std::vector<std::string> kinds;
  ASSERT_TRUE(client.submit_and_wait(req, &out, &err,
                                     [&kinds](const json::Value& ev) {
                                       kinds.push_back(ev.str_or("kind"));
                                     }))
      << err;
  EXPECT_TRUE(out.accepted);
  EXPECT_TRUE(out.passed);
  EXPECT_FALSE(out.interrupted);
  EXPECT_GE(out.events, 2u);  // at least run-started + run-finished
  EXPECT_EQ(kinds.front(), "run_started");
  EXPECT_EQ(kinds.back(), "run_finished");
  const json::Value* checks = out.report.get("checks");
  ASSERT_NE(checks, nullptr);
  // Connector protocol + global safety + the requested end-invariant.
  EXPECT_EQ(checks->arr.size(), 3u);
  // The run landed in the shared ledger.
  EXPECT_NE(ReadLedger().find("pnp.run.v1"), std::string::npos);
}

TEST_F(ServeTest, VerifiesPmlSource) {
  StartServer();
  Client client = Connect();
  JobRequest req;
  req.id = "pc.pml";
  req.model_text = kFastPml;
  req.config.invariant_text = "received <= 3";

  Client::Outcome out;
  std::string err;
  ASSERT_TRUE(client.submit_and_wait(req, &out, &err)) << err;
  EXPECT_TRUE(out.accepted);
  EXPECT_TRUE(out.passed);
}

TEST_F(ServeTest, SecondClientGetsCacheHits) {
  StartServer();
  JobRequest req;
  req.id = "demo.arch";
  req.model_text = kDemoArch;
  req.config.invariant_text = "delivered <= 3";

  Client first = Connect();
  Client::Outcome cold;
  std::string err;
  ASSERT_TRUE(first.submit_and_wait(req, &cold, &err)) << err;
  EXPECT_TRUE(cold.passed);
  EXPECT_GT(cold.recomputed, 0);
  first.close();

  // A different connection, same model: every obligation answers from the
  // daemon's shared cache.
  Client second = Connect();
  Client::Outcome warm;
  ASSERT_TRUE(second.submit_and_wait(req, &warm, &err)) << err;
  EXPECT_TRUE(warm.passed);
  EXPECT_EQ(warm.cache_hits, cold.recomputed);
  EXPECT_EQ(warm.recomputed, 0);
}

TEST_F(ServeTest, BadModelGetsErrorFrameNotAVerdict) {
  StartServer();
  Client client = Connect();
  JobRequest req;
  req.id = "broken";
  req.model_text = "architecture { this is not adl";
  req.kind = Session::SourceKind::Arch;

  Client::Outcome out;
  std::string err;
  ASSERT_TRUE(client.submit_and_wait(req, &out, &err)) << err;
  EXPECT_TRUE(out.accepted);
  EXPECT_FALSE(out.error.empty());
}

TEST_F(ServeTest, MalformedFrameGetsErrorAndConnectionSurvives) {
  StartServer();
  Client client = Connect();
  std::string err;
  ASSERT_TRUE(client.send_line("this is not a frame", &err)) << err;
  std::string frame;
  ASSERT_TRUE(client.recv_line(&frame, &err)) << err;
  json::Value msg;
  ASSERT_TRUE(json::parse(frame, msg, &err)) << err;
  EXPECT_EQ(msg.str_or(kSchema), "error");
  EXPECT_FALSE(msg.str_or("reason").empty());
  // JSONL framing survived the bad frame: the same connection still works.
  EXPECT_TRUE(client.ping(&err)) << err;
  EXPECT_TRUE(WaitForStats(
      [](const ServerStats& s) { return s.protocol_errors == 1; }));
}

TEST_F(ServeTest, CompiledEngineJobRunsAndUnknownEngineGetsErrorFrame) {
  StartServer();
  Client client = Connect();
  std::string err;
  // An unknown engine value comes back as an error frame and leaves the
  // connection usable (request error, not protocol error).
  ASSERT_TRUE(client.send_line(
                  "{\"pnp.job.v1\":\"submit\",\"id\":\"x\","
                  "\"model\":\"m\",\"engine\":\"jit\"}",
                  &err))
      << err;
  std::string frame;
  ASSERT_TRUE(client.recv_line(&frame, &err)) << err;
  json::Value msg;
  ASSERT_TRUE(json::parse(frame, msg, &err)) << err;
  EXPECT_EQ(msg.str_or(kSchema), "error");
  EXPECT_NE(msg.str_or("reason").find("unknown engine"), std::string::npos)
      << msg.str_or("reason");
  // The same connection then runs a real job under the bytecode engine.
  JobRequest req;
  req.id = "demo.arch";
  req.model_text = kDemoArch;
  req.config.end_invariant_text = "delivered == 3";
  req.config.engine = codegen::EngineKind::Bytecode;
  Client::Outcome out;
  ASSERT_TRUE(client.submit_and_wait(req, &out, &err)) << err;
  EXPECT_TRUE(out.accepted);
  EXPECT_TRUE(out.passed);
}

TEST_F(ServeTest, OversizedFrameClosesConnection) {
  StartServer();
  Client client = Connect();
  std::string err;
  // 9 MiB with no newline: past kMaxFrameBytes the server answers with an
  // error frame and hangs up (the framing cannot be resynchronized). The
  // send may also fail part-way once the server resets the connection.
  const std::string blob(std::size_t{9} << 20, 'x');
  (void)client.send_line(blob.substr(0, blob.size() - 1) + "x", &err);
  bool saw_error_frame = false;
  for (;;) {
    std::string frame;
    if (!client.recv_line(&frame, &err)) break;  // EOF: connection closed
    json::Value msg;
    if (json::parse(frame, msg, nullptr) && msg.str_or(kSchema) == "error")
      saw_error_frame = true;
  }
  EXPECT_TRUE(saw_error_frame);
  EXPECT_TRUE(WaitForStats(
      [](const ServerStats& s) { return s.protocol_errors == 1; }));
}

TEST_F(ServeTest, BudgetRejectionWhileBusy) {
  StartServer(/*workers=*/1, /*memory_budget=*/std::uint64_t{300} << 20,
              /*default_job_memory=*/std::uint64_t{256} << 20);
  Client busy = Connect();
  std::string err;
  ASSERT_TRUE(busy.send_line(render_submit(slow_request("slow")), &err))
      << err;
  std::string frame;
  ASSERT_TRUE(busy.recv_line(&frame, &err)) << err;  // accepted
  json::Value msg;
  ASSERT_TRUE(json::parse(frame, msg, &err)) << err;
  ASSERT_EQ(msg.str_or(kSchema), "accepted");

  // 256M (running) + 100M (requested) > 300M: rejected with a reason.
  Client over = Connect();
  JobRequest req;
  req.id = "over";
  req.model_text = kFastPml;
  req.explicit_memory = true;
  req.config.memory_budget_bytes = std::uint64_t{100} << 20;
  Client::Outcome out;
  ASSERT_TRUE(over.submit_and_wait(req, &out, &err)) << err;
  EXPECT_FALSE(out.accepted);  // rejected at the door, never queued
  EXPECT_NE(out.reject_reason.find("memory budget exceeded"),
            std::string::npos)
      << out.reject_reason;
  busy.close();  // cancels the slow job; TearDown drains
}

TEST_F(ServeTest, ClientDisconnectCancelsRunningJob) {
  StartServer(/*workers=*/1);
  {
    Client client = Connect();
    std::string err;
    ASSERT_TRUE(client.send_line(render_submit(slow_request("doomed")), &err))
        << err;
    std::string frame;
    ASSERT_TRUE(client.recv_line(&frame, &err)) << err;  // accepted
    // Wait until the job is genuinely running (its first streamed event),
    // then vanish without saying goodbye.
    ASSERT_TRUE(client.recv_line(&frame, &err)) << err;
  }
  // The reader notices the hangup, flags the job, the engine parks, and
  // the job counts as interrupted -- with its ledger record stamped.
  EXPECT_TRUE(
      WaitForStats([](const ServerStats& s) { return s.interrupted == 1; }));
  EXPECT_NE(ReadLedger().find("interrupted"), std::string::npos);
}

TEST_F(ServeTest, CancelFrameInterruptsRunningJob) {
  StartServer(/*workers=*/1);
  Client client = Connect();
  std::string err;
  ASSERT_TRUE(client.send_line(render_submit(slow_request("target")), &err))
      << err;
  std::string frame;
  ASSERT_TRUE(client.recv_line(&frame, &err)) << err;  // accepted
  ASSERT_TRUE(client.recv_line(&frame, &err)) << err;  // running: first event
  ASSERT_TRUE(client.send_line(render_cancel("target"), &err)) << err;
  // Drain frames until the (interrupted) report for the job arrives.
  bool saw_interrupted_report = false;
  while (client.recv_line(&frame, &err)) {
    json::Value msg;
    ASSERT_TRUE(json::parse(frame, msg, &err)) << err;
    if (msg.str_or(kSchema) == "report") {
      EXPECT_TRUE(msg.bool_or("interrupted"));
      saw_interrupted_report = true;
      break;
    }
  }
  EXPECT_TRUE(saw_interrupted_report);
}

TEST_F(ServeTest, GracefulDrainReportsInterruptedAndRejectsQueued) {
  StartServer(/*workers=*/1);
  Client client = Connect();
  std::string err;
  // Job 1 occupies the one worker; job 2 waits in the queue; job 3 asks
  // for a drain checkpoint.
  JobRequest slow = slow_request("in-flight");
  slow.checkpoint = true;
  ASSERT_TRUE(client.send_line(render_submit(slow), &err)) << err;
  ASSERT_TRUE(client.send_line(render_submit(slow_request("parked")), &err))
      << err;

  // Wait for both accepts and the first event of the running job.
  int accepted = 0;
  bool running = false;
  std::string frame;
  while ((accepted < 2 || !running) && client.recv_line(&frame, &err)) {
    json::Value msg;
    ASSERT_TRUE(json::parse(frame, msg, &err)) << err;
    const std::string verb = msg.str_or(kSchema);
    if (verb == "accepted") ++accepted;
    if (verb == "event" && msg.str_or("id") == "in-flight") running = true;
  }
  ASSERT_EQ(accepted, 2);
  ASSERT_TRUE(running);

  server_->request_stop();

  // The drain must deliver exactly: a rejection for the queued job and an
  // interrupted partial report for the in-flight one -- before hangup.
  bool rejected_parked = false;
  bool interrupted_report = false;
  while (client.recv_line(&frame, &err)) {
    json::Value msg;
    ASSERT_TRUE(json::parse(frame, msg, &err)) << err;
    const std::string verb = msg.str_or(kSchema);
    if (verb == "rejected" && msg.str_or("id") == "parked") {
      EXPECT_NE(msg.str_or("reason").find("draining"), std::string::npos);
      rejected_parked = true;
    }
    if (verb == "report" && msg.str_or("id") == "in-flight") {
      EXPECT_TRUE(msg.bool_or("interrupted"));
      interrupted_report = true;
    }
  }
  EXPECT_TRUE(rejected_parked);
  EXPECT_TRUE(interrupted_report);

  run_thread_.join();
  const ServerStats stats = server_->stats();
  EXPECT_EQ(stats.interrupted, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  // checkpoint=true on the drained job: the engine wrote a pnp.ckpt.v1
  // snapshot under the server state dir on its way out.
  const fs::path ckpt = dir_ / "state" / "ckpt" / "in-flight";
  EXPECT_TRUE(fs::exists(ckpt) && !fs::is_empty(ckpt));
  // The interrupted run still produced a clean, complete ledger record.
  EXPECT_NE(ReadLedger().find("interrupted"), std::string::npos);
  server_.reset();
}

}  // namespace
}  // namespace pnp::serve
