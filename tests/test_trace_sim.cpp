// Simulator and MSC renderer tests.
#include <gtest/gtest.h>

#include "pnp/pnp.h"

namespace pnp {
namespace {

using namespace model;

/// Two processes, one rendezvous handshake, one buffered hop.
struct TinySys {
  SystemSpec sys;
  std::unique_ptr<kernel::Machine> m;

  TinySys() {
    const int rv = sys.add_channel("hand", 0, 1);
    const int buf = sys.add_channel("box", 1, 1);
    ProcBuilder a(sys, "A");
    a.finish(seq(send(a.c(Chan{rv}), {a.k(7)}),
                 send(a.c(Chan{buf}), {a.k(8)})));
    ProcBuilder b(sys, "B");
    const LVar v = b.local("v");
    b.finish(seq(recv(b.c(Chan{rv}), {bind(v)}),
                 recv(b.c(Chan{buf}), {bind(v)})));
    sys.spawn("A", 0, {});
    sys.spawn("B", 1, {});
    m = std::make_unique<kernel::Machine>(sys);
  }
};

TEST(Simulator, RunsToTerminationAndRecordsHistory) {
  TinySys t;
  sim::Simulator s(*t.m, 1);
  const std::size_t steps = s.run_random(100);
  EXPECT_GE(steps, 3u);  // handshake + send + recv at minimum
  EXPECT_EQ(s.history().size(), steps);
  // terminal: no more steps possible
  EXPECT_FALSE(s.step_random());
}

TEST(Simulator, SameSeedSameRun) {
  TinySys t;
  sim::Simulator s1(*t.m, 99), s2(*t.m, 99);
  s1.run_random(50);
  s2.run_random(50);
  ASSERT_EQ(s1.history().size(), s2.history().size());
  for (std::size_t i = 0; i < s1.history().size(); ++i) {
    EXPECT_EQ(s1.history()[i].pid, s2.history()[i].pid);
    EXPECT_EQ(s1.history()[i].trans, s2.history()[i].trans);
  }
}

TEST(Simulator, ResetRestoresInitialState) {
  TinySys t;
  sim::Simulator s(*t.m, 1);
  s.run_random(10);
  s.reset();
  EXPECT_TRUE(s.history().empty());
  EXPECT_EQ(s.state(), t.m->initial());
}

TEST(Simulator, StepPreferringSteersTheRun) {
  TinySys t;
  sim::Simulator s(*t.m, 1);
  // first step must be the rendezvous (it is the only enabled one anyway)
  EXPECT_TRUE(s.step_preferring("hand"));
  EXPECT_EQ(s.history().back().event.kind, kernel::StepEvent::Kind::Handshake);
}

TEST(Msc, RendersHandshakeArrowsAndChannelColumns) {
  TinySys t;
  sim::Simulator s(*t.m, 1);
  s.run_random(100);
  trace::MscOptions opt;
  const std::string msc = trace::render_msc(*t.m, s.history(), opt);
  // header names both processes and the buffered channel
  EXPECT_NE(msc.find("A"), std::string::npos);
  EXPECT_NE(msc.find("B"), std::string::npos);
  EXPECT_NE(msc.find("[box]"), std::string::npos);
  // arrows and labels appear
  EXPECT_NE(msc.find("-->"), std::string::npos);
  EXPECT_NE(msc.find("hand(7)"), std::string::npos);
  EXPECT_NE(msc.find("box(8)"), std::string::npos);
}

TEST(Msc, CustomLabelFormatterIsUsed) {
  TinySys t;
  sim::Simulator s(*t.m, 1);
  s.run_random(100);
  trace::MscOptions opt;
  opt.label = [](int, const std::vector<kernel::Value>& msg) {
    return "payload=" + std::to_string(msg.at(0));
  };
  const std::string msc = trace::render_msc(*t.m, s.history(), opt);
  EXPECT_NE(msc.find("payload=7"), std::string::npos);
}

TEST(Msc, ParticipantFilterHidesOthers) {
  TinySys t;
  sim::Simulator s(*t.m, 1);
  s.run_random(100);
  trace::MscOptions opt;
  opt.pids = {0};  // only A
  opt.channel_lifelines = true;
  const std::string msc = trace::render_msc(*t.m, s.history(), opt);
  // B's column header is absent
  EXPECT_EQ(msc.find(" B "), std::string::npos);
}

TEST(Trace, ToStringNumbersSteps) {
  TinySys t;
  trace::Trace tr;
  kernel::Step st;
  st.pid = 0;
  tr.steps.push_back({st, "first"});
  tr.steps.push_back({st, "second"});
  tr.final_state = "STATE";
  const std::string s = trace::to_string(tr);
  EXPECT_NE(s.find("1. first"), std::string::npos);
  EXPECT_NE(s.find("2. second"), std::string::npos);
  EXPECT_NE(s.find("STATE"), std::string::npos);
}

}  // namespace
}  // namespace pnp
