// Verifier-facade and generator-detail unit tests: report formatting,
// violation vocabulary, endpoint stability across plug-and-play edits,
// event-pool wiring, and the CLI expression parser on generated specs.
#include <gtest/gtest.h>

#include "pnp/pnp.h"
#include "support/string_util.h"

namespace pnp {
namespace {

using namespace model;

ComponentModelFn one_shot_sender() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    return seq(iface::send_msg(b, ctx.port("out"), b.k(1)), end_label());
  };
}

ComponentModelFn one_shot_receiver() {
  return [](ComponentContext& ctx) {
    ProcBuilder& b = ctx.builder();
    const LVar v = b.local("v");
    return seq(iface::recv_msg(b, ctx.port("in"), v), end_label());
  };
}

Architecture tiny() {
  Architecture arch("tiny");
  arch.add_global("flag", 0);
  const int s = arch.add_component("S", one_shot_sender());
  const int r = arch.add_component("R", one_shot_receiver());
  patterns::point_to_point(arch, s, "out", r, "in", "L",
                           SendPortKind::AsynBlocking, RecvPortKind::Blocking,
                           {ChannelKind::SingleSlot, 1});
  return arch;
}

TEST(Verifier, PassReportContainsVerdictAndStats) {
  Architecture arch = tiny();
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out = check_safety(m);
  const std::string rep = out.report();
  EXPECT_NE(rep.find("[PASS]"), std::string::npos);
  EXPECT_NE(rep.find("states stored:"), std::string::npos);
  EXPECT_EQ(rep.find("violation"), std::string::npos);
}

TEST(Verifier, FailReportContainsTraceAndKind) {
  Architecture arch = tiny();
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const SafetyOutcome out =
      check_invariant(m, gen.gx("flag") == gen.kx(1), "flag always 1");
  ASSERT_FALSE(out.passed());
  const std::string rep = out.report();
  EXPECT_NE(rep.find("[FAIL]"), std::string::npos);
  EXPECT_NE(rep.find("invariant violation"), std::string::npos);
  EXPECT_NE(rep.find("counterexample"), std::string::npos);
  EXPECT_NE(rep.find("final state"), std::string::npos);
}

TEST(Verifier, ViolationKindNamesAreStable) {
  EXPECT_STREQ(explore::violation_kind_name(
                   explore::ViolationKind::AssertFailed),
               "assertion violation");
  EXPECT_STREQ(explore::violation_kind_name(explore::ViolationKind::Deadlock),
               "invalid end state (deadlock)");
  EXPECT_STREQ(explore::violation_kind_name(
                   explore::ViolationKind::EndInvariantViolated),
               "end-state invariant violation");
  EXPECT_STREQ(explore::violation_kind_name(
                   explore::ViolationKind::AcceptanceCycle),
               "acceptance cycle (liveness violation)");
}

TEST(Verifier, LtlReportNamesFormulaAndBuchiSize) {
  Architecture arch = tiny();
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  gen.add_prop("never", gen.gx("flag") == gen.kx(99));
  const LtlOutcome out = check_ltl_formula(m, gen.props(), "G !never");
  EXPECT_TRUE(out.passed());
  EXPECT_NE(out.report().find("G(!never)"), std::string::npos);
  EXPECT_NE(out.report().find("Buchi states"), std::string::npos);
}

TEST(Generator, EndpointChannelsStableAcrossConnectorEdits) {
  Architecture arch = tiny();
  ModelGenerator gen;
  (void)gen.generate(arch);
  const auto chan_count_before = gen.spec().channels.size();
  const auto find_chan = [&](const char* name) {
    return gen.spec().find_channel(name);
  };
  const auto s_sig = find_chan("S.out.sig");
  ASSERT_TRUE(s_sig.has_value());

  arch.set_send_port(arch.find_component("S"), "out",
                     SendPortKind::SynBlocking);
  (void)gen.generate(arch);
  // the component-side endpoint keeps its channel id
  EXPECT_EQ(find_chan("S.out.sig"), s_sig);
  // a pure port swap declares no new channels at all
  EXPECT_EQ(gen.spec().channels.size(), chan_count_before);
}

TEST(Generator, EventPoolWiringScalesWithSubscribers) {
  Architecture arch("pool");
  const int p = arch.add_component("P", one_shot_sender());
  std::vector<patterns::SubEnd> subs;
  std::vector<int> sub_ids;
  for (int i = 0; i < 3; ++i) {
    sub_ids.push_back(arch.add_component("Sub" + std::to_string(i),
                                         one_shot_receiver()));
    subs.push_back({sub_ids.back(), "in", RecvPortKind::Blocking, {}});
  }
  patterns::publish_subscribe(arch, "Bus", 2,
                              {{p, "out", SendPortKind::AsynBlocking}}, subs);
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  // one pool process + 1 publisher port + 3 subscriber ports + 4 components
  EXPECT_EQ(m.n_processes(), 9);
  // three per-subscriber queues exist
  EXPECT_TRUE(gen.spec().find_channel("Bus.q0").has_value());
  EXPECT_TRUE(gen.spec().find_channel("Bus.q2").has_value());
  EXPECT_TRUE(check_safety(m).passed());
}

TEST(Generator, ParseExprTextSeesArchGlobals) {
  Architecture arch = tiny();
  ModelGenerator gen;
  const kernel::Machine m = gen.generate(arch);
  const expr::Ex e = gen.parse_expr_text("flag == 0");
  EXPECT_EQ(m.eval_global(e.ref, m.initial()), 1);
  EXPECT_THROW(gen.parse_expr_text("no_such_global == 1"), ModelError);
}

TEST(Generator, SummaryMentionsOptimizedConnectors) {
  Architecture arch = tiny();
  ModelGenerator gen;
  (void)gen.generate(arch, {.optimize_connectors = true});
  EXPECT_NE(gen.last_stats().summary().find("connectors optimized: 1"),
            std::string::npos);
}

TEST(Support, StringHelpers) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(pad_to("ab", 4), "ab  ");
  EXPECT_EQ(pad_to("abcdef", 3), "abc");
  EXPECT_EQ(center("ab", 6), "  ab  ");
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("he", "hello"));
}

}  // namespace
}  // namespace pnp
