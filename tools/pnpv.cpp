// pnpv: command-line verifier for PML models and ADL architectures.
//
//   pnpv MODEL.pml [options]       verify a Promela-subset model
//   pnpv DESIGN.arch [options]     verify a PnP architecture description
//
// Run `pnpv --help` for the full option list -- it is generated from the
// same flag registry that parses the command line and the PNPV_* environment
// variables, so the three can never drift apart. Every verification option
// lands in one pnp::RunConfig field and both file kinds are driven through
// one pnp::Session, which also provides the TTY heartbeat (--heartbeat /
// --no-heartbeat) and the JSONL run ledger (--ledger DIR).
//
// Exit code: 0 if every requested check passed, 1 otherwise, 2 on usage or
// model errors.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adl/adl.h"
#include "codegen/aot.h"
#include "pml/parser.h"
#include "pnp/pnp.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/panic.h"

namespace {

using namespace pnp;

/// SIGINT/SIGTERM request a graceful stop: the engines park, write a final
/// checkpoint (when --checkpoint-dir is set) and the run ledger still gets
/// its clean RunFinished record. A second signal force-exits.
std::atomic<bool> g_interrupt{false};

extern "C" void on_interrupt(int) {
  if (g_interrupt.exchange(true)) std::_Exit(130);  // second signal: give up
}

/// In --serve mode SIGINT/SIGTERM initiate the graceful drain instead
/// (request_stop() is async-signal-safe); a second signal force-exits.
std::atomic<serve::Server*> g_server{nullptr};

extern "C" void on_serve_signal(int) {
  serve::Server* s = g_server.exchange(nullptr);
  if (s == nullptr) std::_Exit(130);  // second signal: give up
  s->request_stop();
}

struct Args {
  RunConfig cfg;
  std::string model_path;
  bool dot = false;
  bool resilience = false;
  std::vector<FaultSpec> fault_list;
  int simulate = 0;
  std::uint64_t seed = 1;
  bool msc = false;
  bool verbose = false;      // print per-check engine resolution
  bool engine_list = false;  // --engine list: backend diagnostic, no model
  // -- daemon / client mode (see serve/server.h) --
  bool serve = false;
  bool submit = false;
  std::string socket_path;
  int port = -1;
  int workers = 2;
  std::uint64_t server_memory = std::uint64_t{4} << 30;
  std::uint64_t job_memory = std::uint64_t{256} << 20;
};

[[noreturn]] void usage(const std::string& msg);

std::uint64_t parse_u64(const std::string& v, const char* flag) {
  try {
    return std::stoull(v);
  } catch (...) {
    usage(std::string(flag) + " needs a non-negative integer, got '" + v + "'");
  }
}

/// Byte sizes with optional K/M/G suffix (binary units): "512M", "2G", "64".
std::uint64_t parse_bytes(const std::string& v, const char* flag) {
  std::size_t end = 0;
  std::uint64_t n = 0;
  try {
    n = std::stoull(v, &end);
  } catch (...) {
    usage(std::string(flag) + " needs SIZE[K|M|G], got '" + v + "'");
  }
  std::uint64_t mult = 1;
  if (end < v.size()) {
    const std::string suffix = v.substr(end);
    if (suffix == "K" || suffix == "k") mult = std::uint64_t{1} << 10;
    else if (suffix == "M" || suffix == "m") mult = std::uint64_t{1} << 20;
    else if (suffix == "G" || suffix == "g") mult = std::uint64_t{1} << 30;
    else usage(std::string(flag) + ": unknown size suffix '" + suffix + "'");
  }
  return n * mult;
}

FaultSpec parse_fault(const std::string& v) {
  const std::size_t c1 = v.find(':');
  if (c1 == std::string::npos) usage("--fault needs KIND:TARGET[:BUDGET]");
  const std::string kind = v.substr(0, c1);
  std::string rest = v.substr(c1 + 1);
  FaultSpec f;
  const std::size_t c2 = rest.rfind(':');
  if (c2 != std::string::npos &&
      rest.find_first_not_of("0123456789", c2 + 1) == std::string::npos &&
      c2 + 1 < rest.size()) {
    f.budget = std::stoi(rest.substr(c2 + 1));
    rest = rest.substr(0, c2);
  }
  f.target = rest;
  if (kind == "loss") f.kind = FaultKind::MessageLoss;
  else if (kind == "duplication") f.kind = FaultKind::MessageDuplication;
  else if (kind == "reorder") f.kind = FaultKind::MessageReorder;
  else if (kind == "timeout") f.kind = FaultKind::SendTimeout;
  else if (kind == "crash") f.kind = FaultKind::CrashRestart;
  else usage("unknown fault kind '" + kind + "'");
  return f;
}

// -- the flag registry --------------------------------------------------------
// One row per option: long name, PNPV_* environment variable (applied before
// the command line, so flags override the environment), value placeholder
// (nullptr = boolean), optional-value whitelist, help text, and the single
// RunConfig/Args field it sets. --help is generated from this table.

struct FlagDef {
  const char* name;    // long option, without the leading "--"
  const char* env;     // environment variable; nullptr = CLI only
  const char* arg;     // value placeholder; nullptr = boolean flag
  const char* accepts; // optional trailing value: space-separated whitelist
  const char* help;
  void (*apply)(Args&, const std::string&);  // booleans receive ""
};

const FlagDef kFlags[] = {
    {"invariant", "PNPV_INVARIANT", "EXPR", nullptr,
     "check EXPR (over globals) in every state",
     [](Args& a, const std::string& v) { a.cfg.invariant_text = v; }},
    {"end-invariant", "PNPV_END_INVARIANT", "EXPR", nullptr,
     "check EXPR in every terminal state",
     [](Args& a, const std::string& v) { a.cfg.end_invariant_text = v; }},
    {"prop", nullptr, "NAME=EXPR", nullptr,
     "define an LTL proposition (repeatable)",
     [](Args& a, const std::string& v) {
       const std::size_t eq = v.find('=');
       if (eq == std::string::npos) usage("--prop needs NAME=EXPR");
       a.cfg.props.emplace_back(v.substr(0, eq), v.substr(eq + 1));
     }},
    {"ltl", nullptr, "FORMULA", nullptr,
     "check an LTL formula (repeatable; uses --prop)",
     [](Args& a, const std::string& v) { a.cfg.ltl.push_back(v); }},
    {"fair", "PNPV_FAIR", nullptr, nullptr,
     "enforce weak process fairness for --ltl",
     [](Args& a, const std::string&) { a.cfg.ltl_weak_fairness = true; }},
    {"no-deadlock-check", nullptr, nullptr, nullptr,
     "skip invalid-end-state detection",
     [](Args& a, const std::string&) { a.cfg.check_deadlock = false; }},
    {"por", "PNPV_POR", nullptr, nullptr, "partial-order reduction",
     [](Args& a, const std::string&) { a.cfg.por = true; }},
    {"bfs", "PNPV_BFS", nullptr, nullptr,
     "breadth-first (shortest counterexamples)",
     [](Args& a, const std::string&) { a.cfg.bfs = true; }},
    {"threads", "PNPV_THREADS", "N", nullptr,
     "exploration threads (1 = sequential, 0 = hardware concurrency); "
     "verdicts are thread-count independent",
     [](Args& a, const std::string& v) {
       a.cfg.threads = std::atoi(v.c_str());
       if (a.cfg.threads < 0) usage("--threads must be >= 0");
     }},
    {"max-states", "PNPV_MAX_STATES", "N", nullptr,
     "search bound (default 20000000)",
     [](Args& a, const std::string& v) {
       a.cfg.max_states = parse_u64(v, "--max-states");
     }},
    {"deadline", "PNPV_DEADLINE", "S", nullptr,
     "wall-clock budget in seconds (partial result + truncation reason when "
     "exceeded)",
     [](Args& a, const std::string& v) {
       a.cfg.deadline_seconds = std::atof(v.c_str());
     }},
    {"memory", "PNPV_MEMORY", "SIZE[K|M|G]", nullptr,
     "approximate memory budget for the search, in bytes",
     [](Args& a, const std::string& v) {
       a.cfg.memory_budget_bytes = parse_bytes(v, "--memory");
     }},
    {"memory-mb", nullptr, "N", nullptr,
     "deprecated alias for --memory NM (mebibytes, converted once here)",
     [](Args& a, const std::string& v) {
       a.cfg.memory_budget_bytes =
           parse_u64(v, "--memory-mb") * (std::uint64_t{1} << 20);
     }},
    {"optimize", "PNPV_OPTIMIZE", nullptr, nullptr,
     "(.arch) substitute optimized connector models",
     [](Args& a, const std::string&) { a.cfg.gen.optimize_connectors = true; }},
    {"minimize", "PNPV_MINIMIZE", nullptr, "weak strong",
     "quotient every proctype by bisimulation before exploring (default "
     "weak; LTL always uses the strong quotient)",
     [](Args& a, const std::string& v) {
       a.cfg.minimize =
           v == "strong" ? MinimizeMode::Strong : MinimizeMode::Weak;
     }},
    {"engine", "PNPV_ENGINE", "KIND", nullptr,
     "successor engine: interp (default), bytecode (threaded fallback "
     "interpreter) or aot (per-model compiled .so, cached under "
     "--cache-dir; falls back to bytecode when no host toolchain is "
     "present, except with --resume, where the fallback is an error). "
     "Verdicts and state counts are engine-independent. "
     "'--engine list' prints the backend diagnostic and exits",
     [](Args& a, const std::string& v) {
       if (v == "list") {
         a.engine_list = true;
         return;
       }
       if (!codegen::parse_engine_kind(v, &a.cfg.engine))
         usage("--engine must be interp, bytecode, aot or list (got '" + v +
               "')");
     }},
    {"verbose", "PNPV_VERBOSE", nullptr, nullptr,
     "also print the resolved successor engine per check (requested vs. "
     "actual backend, with the fallback reason when they differ)",
     [](Args& a, const std::string&) { a.verbose = true; }},
    {"no-protocols", nullptr, nullptr, nullptr,
     "(.arch) skip the per-connector port-protocol obligations",
     [](Args& a, const std::string&) { a.cfg.connector_protocols = false; }},
    {"cache-dir", "PNPV_CACHE_DIR", "DIR", nullptr,
     "persist obligation verdicts (.arch) and --engine aot compiled "
     "artifacts under DIR: re-runs of an unchanged design answer from the "
     "cache, a connector swap re-verifies only the dirtied slice",
     [](Args& a, const std::string& v) { a.cfg.cache_dir = v; }},
    {"spill-dir", "PNPV_SPILL_DIR", "DIR", nullptr,
     "back the visited/intern stores with mmap'd files under DIR when the "
     "--memory budget is hit: the search stays exact (stage 'exact-spill') "
     "instead of truncating and degrading to bitstate",
     [](Args& a, const std::string& v) { a.cfg.spill_dir = v; }},
    {"checkpoint-dir", "PNPV_CHECKPOINT_DIR", "DIR", nullptr,
     "write atomically-committed pnp.ckpt.v1 snapshots under DIR: a final "
     "one on SIGINT/SIGTERM or when the search ends, periodic ones with "
     "--checkpoint-every; continue later with --resume",
     [](Args& a, const std::string& v) { a.cfg.checkpoint_dir = v; }},
    {"checkpoint-every", "PNPV_CHECKPOINT_EVERY", "N", nullptr,
     "also checkpoint every N newly stored states (0 = final snapshot only)",
     [](Args& a, const std::string& v) {
       a.cfg.checkpoint_every = parse_u64(v, "--checkpoint-every");
     }},
    {"resume", "PNPV_RESUME", nullptr, nullptr,
     "resume from the matching snapshot in --checkpoint-dir (checksums and "
     "config digest validated); fresh start when none exists yet",
     [](Args& a, const std::string&) { a.cfg.resume = true; }},
    {"ledger", "PNPV_LEDGER", "DIR", nullptr,
     "append one JSONL record per run to DIR/ledger.jsonl (schema "
     "pnp.run.v1: config digest, per-phase metrics, verdict, trail pointer)",
     [](Args& a, const std::string& v) { a.cfg.ledger_dir = v; }},
    {"heartbeat", "PNPV_HEARTBEAT", nullptr, nullptr,
     "progress ticker on stderr even when it is not a terminal",
     [](Args& a, const std::string&) { a.cfg.heartbeat_force = true; }},
    {"no-heartbeat", nullptr, nullptr, nullptr,
     "disable the progress ticker entirely",
     [](Args& a, const std::string&) { a.cfg.heartbeat = false; }},
    {"resilience", nullptr, nullptr, nullptr,
     "(.arch) verify under the default fault suite (loss/duplication/"
     "reorder per connector, send timeouts, single crash-restarts); exit 0 "
     "iff every fault is tolerated",
     [](Args& a, const std::string&) { a.resilience = true; }},
    {"fault", nullptr, "K:TARGET[:N]", nullptr,
     "(.arch, repeatable) replace the default fault suite; K is loss, "
     "duplication, reorder, timeout (TARGET comp.port) or crash (TARGET "
     "component); N = retry/crash budget",
     [](Args& a, const std::string& v) {
       a.fault_list.push_back(parse_fault(v));
       a.resilience = true;
     }},
    {"dot", nullptr, nullptr, nullptr,
     "(.arch) print the Graphviz rendering and exit",
     [](Args& a, const std::string&) { a.dot = true; }},
    {"simulate", nullptr, "N", nullptr,
     "print an N-step random simulation instead of verifying",
     [](Args& a, const std::string& v) { a.simulate = std::atoi(v.c_str()); }},
    {"seed", nullptr, "N", nullptr, "simulation seed (default 1)",
     [](Args& a, const std::string& v) { a.seed = parse_u64(v, "--seed"); }},
    {"msc", nullptr, nullptr, nullptr,
     "render the simulation as a message sequence chart",
     [](Args& a, const std::string&) { a.msc = true; }},
    {"serve", nullptr, nullptr, nullptr,
     "run as a verification daemon (pnpd): accept pnp.job.v1 jobs on "
     "--socket, share one verdict cache and run ledger across all workers",
     [](Args& a, const std::string&) { a.serve = true; }},
    {"submit", nullptr, nullptr, nullptr,
     "send the model to a running daemon (--socket or --port) instead of "
     "verifying locally; exit code matches a local run",
     [](Args& a, const std::string&) { a.submit = true; }},
    {"socket", "PNPV_SOCKET", "PATH", nullptr,
     "Unix domain socket the daemon listens on / the client connects to",
     [](Args& a, const std::string& v) { a.socket_path = v; }},
    {"port", "PNPV_PORT", "N", nullptr,
     "(--serve) also listen on 127.0.0.1:N (0 = pick an ephemeral port); "
     "(--submit) connect over TCP instead of the socket",
     [](Args& a, const std::string& v) { a.port = std::atoi(v.c_str()); }},
    {"workers", "PNPV_WORKERS", "N", nullptr,
     "(--serve) verification worker threads (default 2)",
     [](Args& a, const std::string& v) {
       a.workers = std::atoi(v.c_str());
       if (a.workers < 1) usage("--workers must be >= 1");
     }},
    {"server-memory", nullptr, "SIZE[K|M|G]", nullptr,
     "(--serve) aggregate admission budget across queued + running jobs "
     "(default 4G; jobs over it are rejected with a reason)",
     [](Args& a, const std::string& v) {
       a.server_memory = parse_bytes(v, "--server-memory");
     }},
    {"job-memory", nullptr, "SIZE[K|M|G]", nullptr,
     "(--serve) memory charge and enforced budget for jobs that do not "
     "bring their own --memory (default 256M)",
     [](Args& a, const std::string& v) {
       a.job_memory = parse_bytes(v, "--job-memory");
     }},
};

void print_help(std::FILE* out) {
  std::fprintf(out,
               "usage: pnpv MODEL.pml|DESIGN.arch [options]\n\n"
               "Every option can also be set through the environment "
               "variable listed\nwith it (flags override the environment).\n"
               "\noptions:\n");
  for (const FlagDef& f : kFlags) {
    std::string left = std::string("  --") + f.name;
    if (f.arg != nullptr) left += std::string(" ") + f.arg;
    if (f.accepts != nullptr) left += std::string(" [") + f.accepts + "]";
    if (f.env != nullptr) left += std::string("  (") + f.env + ")";
    std::fprintf(out, "%-34s %s\n", left.c_str(), f.help);
  }
  std::fprintf(out, "  --help%28s print this help and exit\n", "");
}

[[noreturn]] void usage(const std::string& msg) {
  std::fprintf(stderr, "pnpv: %s\n", msg.c_str());
  print_help(stderr);
  std::exit(2);
}

const FlagDef* find_flag(const std::string& name) {
  for (const FlagDef& f : kFlags)
    if (name == f.name) return &f;
  return nullptr;
}

Args parse_args(int argc, char** argv) {
  Args a;
  // environment first, so explicit flags win
  for (const FlagDef& f : kFlags) {
    if (f.env == nullptr) continue;
    const char* v = std::getenv(f.env);
    if (v == nullptr || *v == '\0') continue;
    f.apply(a, f.arg != nullptr || f.accepts != nullptr ? v : "");
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) == 0) {
      const FlagDef* f = find_flag(arg.substr(2));
      if (f == nullptr) usage("unknown option " + arg);
      std::string value;
      if (f->arg != nullptr) {
        if (i + 1 >= argc) usage("missing value for " + arg);
        value = argv[++i];
      } else if (f->accepts != nullptr && i + 1 < argc) {
        // optional trailing value, consumed only when whitelisted
        const std::string next = argv[i + 1];
        std::istringstream ws(f->accepts);
        std::string w;
        while (ws >> w)
          if (w == next) {
            value = argv[++i];
            break;
          }
      }
      f->apply(a, value);
    } else if (a.model_path.empty()) {
      a.model_path = arg;
    } else {
      usage("more than one model file given");
    }
  }
  if (a.model_path.empty() && !a.serve && !a.engine_list)
    usage("no model file given");
  return a;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "pnpv: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int simulate(const Args& args, const kernel::Machine& m) {
  sim::Simulator s(m, args.seed);
  const std::size_t steps =
      s.run_random(static_cast<std::size_t>(args.simulate));
  if (args.msc) {
    std::printf("%s", trace::render_msc(m, s.history()).c_str());
  } else {
    for (std::size_t i = 0; i < s.history().size(); ++i)
      std::printf("%4zu. %s\n", i + 1, m.describe_step(s.history()[i]).c_str());
  }
  std::printf("-- %zu steps; final state:\n%s\n", steps,
              m.format_state(s.state()).c_str());
  return 0;
}

int run_serve(const Args& args) {
  if (args.socket_path.empty()) usage("--serve needs --socket PATH");
  serve::ServerOptions o;
  o.socket_path = args.socket_path;
  o.tcp_port = args.port;
  o.workers = args.workers;
  o.memory_budget = args.server_memory;
  o.default_job_memory = args.job_memory;
  // --ledger doubles as the daemon state directory: the shared run ledger,
  // the verdict cache and drain checkpoints all live under it.
  o.state_dir = args.cfg.ledger_dir.empty() ? "pnpd-state" : args.cfg.ledger_dir;

  serve::Server server(o);
  std::string err;
  if (!server.start(&err)) {
    std::fprintf(stderr, "pnpd: %s\n", err.c_str());
    return 2;
  }
  g_server.store(&server);
  std::signal(SIGINT, on_serve_signal);
  std::signal(SIGTERM, on_serve_signal);
  std::fprintf(stderr, "pnpd: listening on %s", args.socket_path.c_str());
  if (server.tcp_port() >= 0)
    std::fprintf(stderr, " and 127.0.0.1:%d", server.tcp_port());
  std::fprintf(stderr, " (%d workers, state in %s)\n", args.workers,
               o.state_dir.c_str());
  if (server.ledger_recovered_torn())
    std::fprintf(stderr,
                 "pnpd: note: recovered a torn final record in %s "
                 "(a previous process died mid-append)\n",
                 server.ledger_path().c_str());
  server.run();
  g_server.store(nullptr);
  const serve::ServerStats st = server.stats();
  std::fprintf(stderr,
               "pnpd: drained -- %llu connections, %llu accepted, %llu "
               "completed, %llu interrupted, %llu rejected, %llu protocol "
               "errors\n",
               static_cast<unsigned long long>(st.connections),
               static_cast<unsigned long long>(st.accepted),
               static_cast<unsigned long long>(st.completed),
               static_cast<unsigned long long>(st.interrupted),
               static_cast<unsigned long long>(st.rejected),
               static_cast<unsigned long long>(st.protocol_errors));
  return 0;
}

int run_submit(const Args& args) {
  if (args.socket_path.empty() && args.port < 0)
    usage("--submit needs --socket PATH or --port N");
  serve::Client client;
  std::string err;
  const bool connected =
      !args.socket_path.empty() ? client.connect_unix(args.socket_path, &err)
                                : client.connect_tcp(args.port, &err);
  if (!connected) {
    std::fprintf(stderr, "pnpv: %s\n", err.c_str());
    return 2;
  }

  serve::JobRequest req;
  req.id = args.model_path;  // suffix keeps SourceKind::Auto sniffing honest
  req.model_text = slurp(args.model_path);
  req.resilience = args.resilience;
  req.checkpoint = args.cfg.resume;
  req.explicit_memory = args.cfg.memory_budget_bytes != 0;
  req.config = args.cfg;
  req.config.interrupt = nullptr;  // local-only; never crosses the wire

  serve::Client::Outcome out;
  const bool ok = client.submit_and_wait(
      req, &out, &err, [](const json::Value& ev) {
        std::fprintf(stderr, "pnpd: %s %s\n", ev.str_or("kind").c_str(),
                     ev.str_or("label", ev.str_or("detail")).c_str());
      });
  if (!ok) {
    std::fprintf(stderr, "pnpv: %s\n", err.c_str());
    return 2;
  }
  if (!out.error.empty()) {
    std::fprintf(stderr, "pnpv: server error: %s\n", out.error.c_str());
    return 2;
  }
  if (!out.accepted || !out.reject_reason.empty()) {
    std::fprintf(stderr, "pnpv: job rejected: %s\n",
                 out.reject_reason.c_str());
    return 3;
  }
  std::size_t checks = 0;
  if (const json::Value* cs = out.report.get("checks"); cs != nullptr)
    checks = cs->arr.size();
  std::printf(
      "pnpd-report id=%s passed=%s interrupted=%s checks=%zu "
      "cache_hits=%d recomputed=%d seconds=%.3f\n",
      req.id.c_str(), out.passed ? "true" : "false",
      out.interrupted ? "true" : "false", checks, out.cache_hits,
      out.recomputed, out.seconds);
  if (out.interrupted) return 130;
  return out.passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse_args(argc, argv);
  if (args.engine_list) {
    std::printf("%s", codegen::describe_engines(args.cfg.cache_dir).c_str());
    return 0;
  }
  if (args.serve) return run_serve(args);
  if (args.submit) return run_submit(args);
  if (args.cfg.resume && args.cfg.checkpoint_dir.empty())
    usage("--resume needs --checkpoint-dir");
  if (args.cfg.checkpoint_every > 0 && args.cfg.checkpoint_dir.empty())
    usage("--checkpoint-every needs --checkpoint-dir");
  std::signal(SIGINT, on_interrupt);
  std::signal(SIGTERM, on_interrupt);
  args.cfg.interrupt = &g_interrupt;
  const bool is_arch = args.model_path.size() > 5 &&
                       args.model_path.rfind(".arch") ==
                           args.model_path.size() - 5;
  try {
    Session session(args.cfg);
    /// Shared epilogue: report, torn-ledger warning, interrupt exit code.
    auto finish = [&session, &args](const RunReport& rep) {
      std::printf("%s", rep.report().c_str());
      if (args.verbose) {
        std::printf("engine: requested %s\n",
                    codegen::engine_kind_name(args.cfg.engine));
        for (const RunCheck& c : rep.checks) {
          if (c.engine.empty()) continue;
          std::printf("engine: %s '%s': %s%s%s\n", c.kind.c_str(),
                      c.label.c_str(), c.engine.c_str(),
                      c.engine_note.empty() ? "" : " -- ",
                      c.engine_note.c_str());
        }
      }
      if (session.ledger_recovered_torn())
        std::fprintf(stderr,
                     "pnpv: note: recovered a torn final record in %s "
                     "(a previous process died mid-append)\n",
                     session.ledger_path().c_str());
      if (g_interrupt.load()) {
        std::fprintf(stderr,
                     "pnpv: interrupted -- partial verdict above; rerun "
                     "with --resume to continue the search\n");
        return 130;
      }
      return rep.passed ? 0 : 1;
    };

    if (is_arch) {
      Architecture arch = adl::parse_architecture(slurp(args.model_path));
      if (args.dot) {
        std::printf("%s", arch.to_dot().c_str());
        return 0;
      }
      if (args.simulate > 0) {
        const kernel::Machine m =
            session.generator().generate(arch, args.cfg.gen);
        std::printf("%s", arch.describe().c_str());
        return simulate(args, m);
      }
      std::printf("%s", arch.describe().c_str());
      const RunReport rep =
          args.resilience
              ? session.verify_resilience(arch, args.fault_list)
              : session.verify(arch);
      return finish(rep);
    }

    // --cache-dir on a .pml model is meaningful only as the AOT artifact
    // store; there are no obligation verdicts to cache for raw machines.
    if (!args.cfg.cache_dir.empty() &&
        args.cfg.engine != codegen::EngineKind::Aot)
      usage("--cache-dir applies to .arch designs (or --engine aot) only");
    if (args.resilience) usage("--resilience applies to .arch designs only");
    model::SystemSpec sys = pml::parse(slurp(args.model_path));
    kernel::Machine m(sys);
    std::printf("model: %s  (%zu processes, %zu channels, %zu globals)\n",
                args.model_path.c_str(), sys.processes.size(),
                sys.channels.size(), sys.globals.size());
    if (args.simulate > 0) return simulate(args, m);
    model::SystemSpec* sp = &sys;
    const RunReport rep = session.verify_machine(
        m, args.model_path, [sp](const std::string& text) {
          return pml::parse_global_expr(*sp, text);
        });
    return finish(rep);
  } catch (const ModelError& e) {
    std::fprintf(stderr, "pnpv: %s\n", e.what());
    return 2;
  }
}
