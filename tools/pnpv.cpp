// pnpv: command-line verifier for PML models and ADL architectures.
//
// Usage:
//   pnpv MODEL.pml [options]       verify a Promela-subset model
//   pnpv DESIGN.arch [options]     verify a PnP architecture description
//     --invariant EXPR      check EXPR (over globals) in every state
//     --end-invariant EXPR  check EXPR in every terminal state
//     --prop NAME=EXPR      define an LTL proposition (repeatable)
//     --ltl FORMULA         check an LTL formula (repeatable; uses --prop)
//     --fair                enforce weak process fairness for --ltl
//     --no-deadlock-check   skip invalid-end-state detection
//     --por                 partial-order reduction
//     --bfs                 breadth-first (shortest counterexamples)
//     --threads N           exploration threads (default 1 = sequential;
//                           0 = hardware concurrency). Exact searches use
//                           the sharded parallel engine, bitstate becomes a
//                           seeded swarm, LTL races permuted nested-DFS
//                           workers, and --resilience verifies fault
//                           variants concurrently. Verdicts and exact state
//                           counts are thread-count independent.
//     --max-states N        search bound (default 20000000)
//     --deadline S          wall-clock budget in seconds (partial result +
//                           truncation reason when exceeded)
//     --memory-mb N         approximate memory budget for the search
//     --resilience          (.arch) verify under the default fault suite
//                           (loss/duplication/reorder per connector, send
//                           timeouts, single crash-restarts); exit 0 iff
//                           every fault is tolerated
//     --fault K:TARGET[:N]  (.arch, repeatable) replace the default suite
//                           with the given faults; K is loss, duplication,
//                           reorder, timeout (TARGET comp.port), or crash
//                           (TARGET component); N = retry/crash budget
//     --optimize            (.arch) substitute optimized connector models
//     --minimize [weak|strong]
//                           quotient every proctype by bisimulation before
//                           exploring (default weak = also contracts
//                           internal skip steps; LTL checks always use the
//                           strong quotient). Verdicts are unchanged; state
//                           counts shrink.
//     --cache-dir DIR       (.arch) verify as a suite of content-addressed
//                           obligations with verdicts persisted under DIR:
//                           re-runs of an unchanged design answer from the
//                           cache, a connector swap re-verifies only the
//                           dirtied slice
//     --dot                 (.arch) print the Graphviz rendering and exit
//     --simulate N          print an N-step random simulation instead
//     --seed N              simulation seed (default 1)
//     --msc                 render the simulation as a message sequence chart
//
// Exit code: 0 if every requested check passed, 1 otherwise, 2 on usage or
// model errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "adl/adl.h"
#include "explore/explorer.h"
#include "ltl/product.h"
#include "pml/parser.h"
#include "pnp/pnp.h"
#include "sim/simulator.h"
#include "support/panic.h"
#include "trace/msc.h"

namespace {

using namespace pnp;

struct Args {
  std::string model_path;
  std::string invariant;
  std::string end_invariant;
  std::vector<std::pair<std::string, std::string>> props;
  std::vector<std::string> ltl;
  bool fair = false;
  bool deadlock_check = true;
  bool por = false;
  bool bfs = false;
  bool optimize = false;
  MinimizeMode minimize = MinimizeMode::Off;
  std::string cache_dir;
  bool dot = false;
  bool resilience = false;
  std::vector<FaultSpec> fault_list;
  std::uint64_t max_states = 20'000'000;
  int threads = 1;
  double deadline = 0.0;
  std::uint64_t memory_mb = 0;
  int simulate = 0;
  std::uint64_t seed = 1;
  bool msc = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "pnpv: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: pnpv MODEL.pml|DESIGN.arch [--invariant E] [--end-invariant E]\n"
      "            [--prop NAME=E]... [--ltl F]... [--fair]\n"
      "            [--no-deadlock-check] [--por] [--bfs] [--threads N]\n"
      "            [--max-states N]\n"
      "            [--deadline S] [--memory-mb N]\n"
      "            [--minimize [weak|strong]] [--cache-dir DIR]\n"
      "            [--optimize] [--dot] [--resilience [--fault K:T[:N]]...]\n"
      "            [--simulate N [--seed N] [--msc]]\n");
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--invariant") a.invariant = value();
    else if (arg == "--end-invariant") a.end_invariant = value();
    else if (arg == "--prop") {
      const std::string v = value();
      const std::size_t eq = v.find('=');
      if (eq == std::string::npos) usage("--prop needs NAME=EXPR");
      a.props.emplace_back(v.substr(0, eq), v.substr(eq + 1));
    } else if (arg == "--ltl") a.ltl.push_back(value());
    else if (arg == "--fair") a.fair = true;
    else if (arg == "--no-deadlock-check") a.deadlock_check = false;
    else if (arg == "--por") a.por = true;
    else if (arg == "--bfs") a.bfs = true;
    else if (arg == "--optimize") a.optimize = true;
    else if (arg == "--minimize") {
      a.minimize = MinimizeMode::Weak;
      // the equivalence is an optional value: "--minimize strong"
      if (i + 1 < argc && (std::strcmp(argv[i + 1], "weak") == 0 ||
                           std::strcmp(argv[i + 1], "strong") == 0))
        a.minimize = std::strcmp(argv[++i], "strong") == 0
                         ? MinimizeMode::Strong
                         : MinimizeMode::Weak;
    }
    else if (arg == "--cache-dir") a.cache_dir = value();
    else if (arg == "--dot") a.dot = true;
    else if (arg == "--max-states") a.max_states = std::stoull(value());
    else if (arg == "--threads") {
      a.threads = std::stoi(value());
      if (a.threads < 0) usage("--threads must be >= 0");
    }
    else if (arg == "--deadline") a.deadline = std::stod(value());
    else if (arg == "--memory-mb") a.memory_mb = std::stoull(value());
    else if (arg == "--resilience") a.resilience = true;
    else if (arg == "--fault") {
      const std::string v = value();
      const std::size_t c1 = v.find(':');
      if (c1 == std::string::npos) usage("--fault needs KIND:TARGET[:BUDGET]");
      const std::string kind = v.substr(0, c1);
      std::string rest = v.substr(c1 + 1);
      FaultSpec f;
      const std::size_t c2 = rest.rfind(':');
      if (c2 != std::string::npos &&
          rest.find_first_not_of("0123456789", c2 + 1) == std::string::npos &&
          c2 + 1 < rest.size()) {
        f.budget = std::stoi(rest.substr(c2 + 1));
        rest = rest.substr(0, c2);
      }
      f.target = rest;
      if (kind == "loss") f.kind = FaultKind::MessageLoss;
      else if (kind == "duplication") f.kind = FaultKind::MessageDuplication;
      else if (kind == "reorder") f.kind = FaultKind::MessageReorder;
      else if (kind == "timeout") f.kind = FaultKind::SendTimeout;
      else if (kind == "crash") f.kind = FaultKind::CrashRestart;
      else usage(("unknown fault kind '" + kind + "'").c_str());
      a.fault_list.push_back(std::move(f));
      a.resilience = true;
    }
    else if (arg == "--simulate") a.simulate = std::stoi(value());
    else if (arg == "--seed") a.seed = std::stoull(value());
    else if (arg == "--msc") a.msc = true;
    else if (arg.rfind("--", 0) == 0) usage(("unknown option " + arg).c_str());
    else if (a.model_path.empty()) a.model_path = arg;
    else usage("more than one model file given");
  }
  if (a.model_path.empty()) usage("no model file given");
  return a;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "pnpv: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void print_stats(const explore::Stats& st) {
  const std::string note =
      st.complete ? std::string()
                  : std::string("  [truncated: ") +
                        explore::truncation_reason_name(st.truncation) + "]";
  const std::string threads_note =
      st.threads > 1 ? " (" + std::to_string(st.threads) + " threads)" : "";
  std::printf("  states stored: %llu, matched: %llu, transitions: %llu, "
              "%.2f ms%s%s\n",
              static_cast<unsigned long long>(st.states_stored),
              static_cast<unsigned long long>(st.states_matched),
              static_cast<unsigned long long>(st.transitions),
              st.seconds * 1e3, threads_note.c_str(), note.c_str());
  if (st.states_per_second() > 0.0 || st.store_bytes > 0)
    std::printf("  throughput: %llu states/s, %.1f B/state (%.2f MiB store)\n",
                static_cast<unsigned long long>(st.states_per_second()),
                st.store_bytes_per_state(),
                static_cast<double>(st.store_bytes) / (1024.0 * 1024.0));
}

using ExprParser = std::function<expr::Ref(const std::string&)>;

int simulate(const Args& args, const kernel::Machine& m) {
  sim::Simulator s(m, args.seed);
  const std::size_t steps =
      s.run_random(static_cast<std::size_t>(args.simulate));
  if (args.msc) {
    std::printf("%s", trace::render_msc(m, s.history()).c_str());
  } else {
    for (std::size_t i = 0; i < s.history().size(); ++i)
      std::printf("%4zu. %s\n", i + 1, m.describe_step(s.history()[i]).c_str());
  }
  std::printf("-- %zu steps; final state:\n%s\n", steps,
              m.format_state(s.state()).c_str());
  return 0;
}

int run_checks(const Args& args, const kernel::Machine& m,
               const ExprParser& parse_expr) {
  bool all_ok = true;

  // --minimize: explore the product of per-process bisimulation quotients
  // instead of the raw machine. The weak quotient is used for the safety
  // search; LTL always gets the strong one (weak tau-contraction is not
  // stutter-sound).
  std::optional<reduce::ReducedMachine> safety_red, ltl_red;
  const kernel::Machine* safety_m = &m;
  if (args.minimize != MinimizeMode::Off) {
    safety_red.emplace(m, args.minimize == MinimizeMode::Weak
                              ? reduce::Equivalence::Weak
                              : reduce::Equivalence::Strong);
    safety_m = &safety_red->machine();
    std::printf("%s\n", safety_red->stats().summary().c_str());
  }

  {
    explore::Options opt;
    opt.max_states = args.max_states;
    opt.check_deadlock = args.deadlock_check;
    opt.por = args.por;
    opt.bfs = args.bfs;
    opt.deadline_seconds = args.deadline;
    opt.memory_budget_bytes = args.memory_mb * (std::uint64_t{1} << 20);
    opt.threads = args.threads;
    if (!args.invariant.empty()) {
      opt.invariant = parse_expr(args.invariant);
      opt.invariant_name = args.invariant;
    }
    if (!args.end_invariant.empty()) {
      opt.end_invariant = parse_expr(args.end_invariant);
      opt.end_invariant_name = args.end_invariant;
    }
    const explore::Result r = explore::explore(*safety_m, opt);
    std::printf("[%s] safety (assertions%s%s%s)\n", r.ok() ? "PASS" : "FAIL",
                args.deadlock_check ? " + deadlock" : "",
                args.invariant.empty() ? "" : " + invariant",
                args.end_invariant.empty() ? "" : " + end-invariant");
    print_stats(r.stats);
    if (r.violation) {
      std::printf("  %s: %s\n",
                  explore::violation_kind_name(r.violation->kind),
                  r.violation->message.c_str());
      std::printf("%s", trace::to_string(r.violation->trace).c_str());
      all_ok = false;
    }
  }

  if (!args.ltl.empty()) {
    const kernel::Machine* ltl_m = &m;
    if (args.minimize == MinimizeMode::Strong) {
      ltl_m = &safety_red->machine();
    } else if (args.minimize == MinimizeMode::Weak) {
      ltl_red.emplace(m, reduce::Equivalence::Strong);
      ltl_m = &ltl_red->machine();
      std::printf("LTL uses the strong quotient: %s\n",
                  ltl_red->stats().summary().c_str());
    }
    ltl::PropertyContext props;
    for (const auto& [name, text] : args.props)
      props.add(name, parse_expr(text));
    for (const std::string& formula : args.ltl) {
      ltl::CheckOptions copt;
      copt.max_states = args.max_states;
      copt.weak_fairness = args.fair;
      copt.threads = args.threads;
      const ltl::LtlResult r = ltl::check_ltl(*ltl_m, props, formula, copt);
      std::printf("[%s] LTL %s%s  (Buchi states: %zu)\n",
                  r.holds ? "PASS" : "FAIL", formula.c_str(),
                  args.fair ? " [weak fairness]" : "", r.buchi_states);
      print_stats(r.stats);
      if (r.violation) {
        std::printf("%s", trace::to_string(r.violation->trace).c_str());
        all_ok = false;
      }
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  const bool is_arch = args.model_path.size() > 5 &&
                       args.model_path.rfind(".arch") ==
                           args.model_path.size() - 5;
  try {
    if (is_arch) {
      Architecture arch = adl::parse_architecture(slurp(args.model_path));
      if (args.dot) {
        std::printf("%s", arch.to_dot().c_str());
        return 0;
      }
      if (args.resilience) {
        ResilienceOptions ropt;
        ropt.verify.max_states = args.max_states;
        ropt.verify.check_deadlock = args.deadlock_check;
        ropt.verify.por = args.por;
        ropt.verify.bfs = args.bfs;
        ropt.verify.deadline_seconds = args.deadline;
        ropt.verify.memory_budget_bytes =
            args.memory_mb * (std::uint64_t{1} << 20);
        // --threads on a resilience run fans out across fault variants
        // (each variant's own search stays sequential): the variants are
        // many and small, so variant-level parallelism is the useful axis.
        ropt.jobs = args.threads;
        ropt.invariant_text = args.invariant;
        ropt.gen.optimize_connectors = args.optimize;
        const ResilienceReport rep = check_resilience(
            arch,
            args.fault_list.empty() ? default_fault_suite(arch)
                                    : args.fault_list,
            ropt);
        std::printf("%s", rep.report().c_str());
        return rep.baseline_passed() && rep.all_tolerated() ? 0 : 1;
      }
      if (!args.cache_dir.empty()) {
        // cached obligation-suite path: local per-connector protocol
        // obligations + global properties, verdicts persisted under DIR
        SuiteOptions sopt;
        sopt.verify.max_states = args.max_states;
        sopt.verify.check_deadlock = args.deadlock_check;
        sopt.verify.por = args.por;
        sopt.verify.bfs = args.bfs;
        sopt.verify.deadline_seconds = args.deadline;
        sopt.verify.memory_budget_bytes =
            args.memory_mb * (std::uint64_t{1} << 20);
        sopt.verify.threads = args.threads;
        sopt.verify.minimize = args.minimize;
        sopt.gen.optimize_connectors = args.optimize;
        sopt.invariant_text = args.invariant;
        sopt.end_invariant_text = args.end_invariant;
        sopt.props = args.props;
        sopt.ltl = args.ltl;
        sopt.ltl_weak_fairness = args.fair;
        sopt.cache_dir = args.cache_dir;
        const SuiteReport rep = verify_obligations(arch, sopt);
        std::printf("%s", rep.report().c_str());
        return rep.all_passed() ? 0 : 1;
      }
      ModelGenerator gen;
      const kernel::Machine m =
          gen.generate(arch, {.optimize_connectors = args.optimize});
      std::printf("%s", arch.describe().c_str());
      std::printf("generation: %s\n", gen.last_stats().summary().c_str());
      if (args.simulate > 0) return simulate(args, m);
      ModelGenerator* gp = &gen;
      return run_checks(args, m, [gp](const std::string& text) {
        return gp->parse_expr_text(text).ref;
      });
    }

    if (!args.cache_dir.empty())
      usage("--cache-dir applies to .arch designs only");
    model::SystemSpec sys = pml::parse(slurp(args.model_path));
    kernel::Machine m(sys);
    std::printf("model: %s  (%zu processes, %zu channels, %zu globals)\n",
                args.model_path.c_str(), sys.processes.size(),
                sys.channels.size(), sys.globals.size());
    if (args.simulate > 0) return simulate(args, m);
    model::SystemSpec* sp = &sys;
    return run_checks(args, m, [sp](const std::string& text) {
      return pml::parse_global_expr(*sp, text);
    });
  } catch (const ModelError& e) {
    std::fprintf(stderr, "pnpv: %s\n", e.what());
    return 2;
  }
}
